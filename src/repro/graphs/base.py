"""The :class:`Graph` interface every voting host must implement.

Design note (DESIGN.md §2.1): the Best-of-k dynamics, the voting-DAG dual,
the COBRA walk, and all baselines touch the graph *only* through uniform
with-replacement neighbour sampling.  Making that the interface — rather
than adjacency iteration — is what allows `O(1)`-memory implicit dense
hosts, which in turn is what makes the paper's "dense graphs" regime
(minimum degree ``n^α``) tractable at large ``n`` in pure Python/NumPy.
"""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.graphs.csr import CSRGraph

__all__ = ["Graph"]


class Graph(abc.ABC):
    """Abstract host graph for sampling-based voting dynamics.

    Concrete subclasses must be *simple* undirected graphs (no self-loops,
    no multi-edges) with minimum degree >= 1, matching the paper's setting
    where every vertex can always draw three neighbours.
    """

    # ------------------------------------------------------------------
    # Abstract surface
    # ------------------------------------------------------------------

    @property
    @abc.abstractmethod
    def num_vertices(self) -> int:
        """Number of vertices ``n``; vertices are labelled ``0 .. n-1``."""

    @property
    @abc.abstractmethod
    def degrees(self) -> np.ndarray:
        """Integer array of shape ``(n,)`` with the degree of each vertex."""

    @abc.abstractmethod
    def sample_neighbors(
        self, vertices: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample ``k`` neighbours uniformly *with replacement* per vertex.

        Parameters
        ----------
        vertices:
            1-D integer array of vertex ids (may repeat; repeats get
            independent samples).
        k:
            Number of draws per vertex (the paper's ``k = 3``).
        rng:
            Source of randomness.

        Returns
        -------
        numpy.ndarray
            Integer array of shape ``(len(vertices), k)``; row ``i`` holds
            ``k`` i.i.d. uniform draws from the neighbourhood of
            ``vertices[i]``.
        """

    # ------------------------------------------------------------------
    # Batched sampling (the ensemble engine's hot path)
    # ------------------------------------------------------------------

    def sample_neighbors_batch(
        self,
        vertices: np.ndarray,
        k: int,
        rng: np.random.Generator,
        replicas: int,
    ) -> np.ndarray:
        """Sample ``k`` neighbours per vertex for *replicas* independent runs.

        Semantically equivalent to stacking *replicas* independent calls to
        :meth:`sample_neighbors`, but issued as one vectorised draw so a
        whole ensemble round costs a constant number of NumPy kernels.

        Parameters
        ----------
        vertices:
            1-D integer array of vertex ids (shared by all replicas).
        k:
            Draws per vertex.
        rng:
            Source of randomness (one stream serves the whole batch).
        replicas:
            Number of independent replicas ``R``.

        Returns
        -------
        numpy.ndarray
            Integer array of shape ``(replicas, len(vertices), k)``; slice
            ``[r]`` is distributed exactly like ``sample_neighbors(vertices,
            k, rng)``.  The dtype may be ``int32`` when vertex ids fit (the
            engine's reduced-memory-traffic index path).

        Notes
        -----
        The default implementation tiles the vertex array and reshapes —
        correct for every host because rows of :meth:`sample_neighbors` are
        i.i.d.  Hosts with a cheaper closed form (``K_n``, CSR) override it
        to avoid the tiled id array and to emit ``int32`` indices.
        """
        replicas = int(replicas)
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        vertices = self._check_vertices(vertices)
        flat = np.tile(vertices, replicas)
        return self.sample_neighbors(flat, k, rng).reshape(
            replicas, vertices.size, k
        )

    @property
    def vertex_ids(self) -> np.ndarray:
        """Cached ``arange(n)`` vertex-id array (do not mutate).

        The per-round dynamics previously allocated a fresh ``np.arange(n)``
        every step; hot loops should use this shared array instead.
        """
        ids = getattr(self, "_vertex_ids_cache", None)
        if ids is None or ids.size != self.num_vertices:
            ids = np.arange(self.num_vertices, dtype=np.int64)
            ids.setflags(write=False)
            self._vertex_ids_cache = ids
        return ids

    # ------------------------------------------------------------------
    # Exact count-chain kernels (the ensemble engine's O(parts) path)
    # ------------------------------------------------------------------

    def count_chain_kernel(self):
        """The host's exact count-chain kernel, or ``None``.

        Hosts made of exchangeable parts (DESIGN.md §2.5) return a
        :class:`~repro.core.kernels.CountChainKernel` here and
        :func:`~repro.core.ensemble.run_ensemble`'s ``method="auto"``
        routes their ensembles onto it — O(parts) work per round instead
        of O(n·k).  The default is ``None`` (no exchangeable structure):
        generic hosts use the batched dense path.  Subclasses with a
        kernel override :meth:`_build_count_chain_kernel` (memoised
        here); generators that *know* their output's structure (e.g. the
        two-clique bridge, which materialises as a plain CSR graph)
        attach one explicitly via :meth:`attach_count_chain_kernel`.
        """
        kernel = getattr(self, "_count_chain_kernel", None)
        if kernel is None:
            kernel = self._build_count_chain_kernel()
            if kernel is not None:
                self._count_chain_kernel = kernel
        return kernel

    def _build_count_chain_kernel(self):
        """Construct this host's kernel, or ``None`` (the default)."""
        return None

    def attach_count_chain_kernel(self, kernel) -> None:
        """Declare *kernel* as this instance's exact count chain.

        The caller asserts exactness: the kernel's slot counts must be a
        sufficient statistic for this graph's Best-of-k update law.
        """
        self._count_chain_kernel = kernel

    @property
    def index_dtype(self) -> type:
        """Narrowest integer dtype that can hold every vertex id.

        ``int32`` for ``n < 2**31`` halves gather/index memory traffic in
        the batched engine; ``int64`` otherwise.
        """
        return (
            np.int32
            if self.num_vertices < np.iinfo(np.int32).max
            else np.int64
        )

    # ------------------------------------------------------------------
    # Derived quantities shared by all hosts
    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|`` (= sum of degrees / 2)."""
        return int(self.degrees.sum()) // 2

    @property
    def min_degree(self) -> int:
        """Minimum degree ``d`` — the paper's density parameter."""
        return int(self.degrees.min())

    @property
    def max_degree(self) -> int:
        """Maximum degree."""
        return int(self.degrees.max())

    @property
    def alpha(self) -> float:
        """The paper's density exponent ``α`` with ``d = n^α``.

        Computed as ``log(min_degree)/log(n)``.  Theorem 1 requires
        ``α = Ω(1/log log n)``; see
        :func:`repro.graphs.properties.is_dense_for_theorem1`.
        """
        n = self.num_vertices
        if n <= 1:
            raise ValueError("alpha is undefined for graphs with n <= 1")
        d = self.min_degree
        if d < 1:
            raise ValueError("alpha is undefined for graphs with isolated vertices")
        return math.log(d) / math.log(n)

    def degree_volume(self, subset: np.ndarray | None = None) -> int:
        """Sum of degrees ``d(X)`` over *subset* (all of ``V`` if ``None``).

        This is the quantity the voter-model win probability and the [5]
        spectral condition are stated in terms of.
        """
        if subset is None:
            return int(self.degrees.sum())
        subset = np.asarray(subset)
        if subset.dtype == np.bool_:
            if subset.shape != (self.num_vertices,):
                raise ValueError(
                    f"boolean mask must have shape ({self.num_vertices},), "
                    f"got {subset.shape}"
                )
            return int(self.degrees[subset].sum())
        return int(self.degrees[subset].sum())

    # ------------------------------------------------------------------
    # Optional materialisation (implicit hosts override; small-n only)
    # ------------------------------------------------------------------

    def to_csr(self) -> "CSRGraph":
        """Materialise the graph as an explicit :class:`CSRGraph`.

        Implicit hosts provide this for testing/spectral analysis at small
        ``n``; the default raises because a generic ``Graph`` exposes no
        adjacency enumeration.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support materialisation to CSR"
        )

    # ------------------------------------------------------------------
    # Shared validation helpers for subclasses
    # ------------------------------------------------------------------

    def _check_vertices(self, vertices: np.ndarray) -> np.ndarray:
        """Validate and canonicalise a vertex-id array for sampling calls."""
        vertices = np.asarray(vertices)
        if vertices.ndim != 1:
            raise ValueError(
                f"vertices must be a 1-D array, got shape {vertices.shape}"
            )
        if vertices.size and (
            vertices.min() < 0 or vertices.max() >= self.num_vertices
        ):
            raise ValueError(
                f"vertex ids must lie in [0, {self.num_vertices}), got range "
                f"[{vertices.min()}, {vertices.max()}]"
            )
        return vertices.astype(np.int64, copy=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self.num_vertices}, m={self.num_edges}, "
            f"d_min={self.min_degree})"
        )
