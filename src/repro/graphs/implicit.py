"""Implicit O(1)-memory dense graph families.

The paper's regime is *dense* graphs — minimum degree ``d = n^α``.  At
``n = 10⁶`` a complete graph has ~5·10¹¹ edges; materialising it is out of
the question, yet the dynamics only needs uniform neighbour draws, which
these families admit in closed form.  Each class below implements
rejection-free sampling with a constant number of vectorised operations per
round, independent of the edge count.

This is the library's main answer to the calibration note that a naive
networkx reproduction is "slow on dense large graphs" (DESIGN.md §1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.graphs.base import Graph
from repro.graphs.csr import CSRGraph
from repro.util.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.kernels import CompleteKernel, MultipartiteKernel

__all__ = [
    "CompleteGraph",
    "CompleteBipartiteGraph",
    "CompleteMultipartiteGraph",
    "RookGraph",
]


class CompleteGraph(Graph):
    """The complete graph ``K_n`` without adjacency storage.

    Sampling trick: a uniform neighbour of ``v`` is a uniform element of
    ``{0..n-1} \\ {v}``; draw ``r`` uniform on ``[0, n-2]`` and shift
    ``r >= v`` up by one.  Exact, rejection-free, branch-free.

    ``K_n`` is the host of the Becchetti et al. [2] and Ghaffari–Lengler
    [8] analyses the introduction compares against, and the natural
    ``α → 1`` extreme of Theorem 1.
    """

    def __init__(self, n: int) -> None:
        n = check_positive_int(n, "n")
        if n < 2:
            raise ValueError(f"K_n needs n >= 2 to have edges, got n={n}")
        self._n = n

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def degrees(self) -> np.ndarray:
        return np.full(self._n, self._n - 1, dtype=np.int64)

    # Closed-form degree statistics: the O(n) ``degrees`` array must never
    # be materialised on the count-chain path (n can exceed 10^10 there).
    @property
    def min_degree(self) -> int:
        return self._n - 1

    @property
    def max_degree(self) -> int:
        return self._n - 1

    @property
    def num_edges(self) -> int:
        return self._n * (self._n - 1) // 2

    def _build_count_chain_kernel(self) -> "CompleteKernel":
        from repro.core.kernels import CompleteKernel

        return CompleteKernel(self._n)

    def sample_neighbors(
        self, vertices: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        vertices = self._check_vertices(vertices)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        draws = rng.integers(0, self._n - 1, size=(vertices.size, k), dtype=np.int64)
        draws += draws >= vertices[:, None]
        return draws

    def sample_neighbors_batch(
        self,
        vertices: np.ndarray,
        k: int,
        rng: np.random.Generator,
        replicas: int,
    ) -> np.ndarray:
        """Batched skip-self sampling in the narrow index dtype.

        One ``integers`` draw of shape ``(R, m, k)`` plus the shift — no
        per-replica work at all, and ``int32`` ids whenever ``n < 2**31``.
        """
        replicas = int(replicas)
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        vertices = self._check_vertices(vertices)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        dtype = self.index_dtype
        draws = rng.integers(
            0, self._n - 1, size=(replicas, vertices.size, k), dtype=dtype
        )
        draws += draws >= vertices[None, :, None]
        return draws

    def to_csr(self) -> CSRGraph:
        n = self._n
        if n > 4096:
            raise ValueError(
                f"refusing to materialise K_{n} ({n * (n - 1)} arcs); "
                "materialisation is intended for tests at small n"
            )
        indptr = np.arange(n + 1, dtype=np.int64) * (n - 1)
        base = np.arange(n, dtype=np.int64)
        rows = [np.delete(base, v) for v in range(n)]
        return CSRGraph(indptr, np.concatenate(rows), validate=False)


class CompleteBipartiteGraph(Graph):
    """The complete bipartite graph ``K_{a,b}``.

    Left part is ``0..a-1``, right part ``a..a+b-1``.  Note ``K_{a,b}`` is
    bipartite: the *voter* model does not converge on it in general (the
    paper's introduction restricts Best-of-1 consensus to non-bipartite
    graphs), which makes it a useful contrast host; Best-of-3 from i.i.d.
    opinions still converges because both parts share the same drift.
    """

    def __init__(self, a: int, b: int) -> None:
        self._a = check_positive_int(a, "a")
        self._b = check_positive_int(b, "b")

    @property
    def part_sizes(self) -> tuple[int, int]:
        """Sizes ``(a, b)`` of the two parts."""
        return self._a, self._b

    @property
    def num_vertices(self) -> int:
        return self._a + self._b

    @property
    def degrees(self) -> np.ndarray:
        deg = np.empty(self._a + self._b, dtype=np.int64)
        deg[: self._a] = self._b
        deg[self._a :] = self._a
        return deg

    @property
    def min_degree(self) -> int:
        return min(self._a, self._b)

    @property
    def max_degree(self) -> int:
        return max(self._a, self._b)

    @property
    def num_edges(self) -> int:
        return self._a * self._b

    def _build_count_chain_kernel(self) -> "MultipartiteKernel":
        from repro.core.kernels import MultipartiteKernel

        return MultipartiteKernel((self._a, self._b))

    def sample_neighbors(
        self, vertices: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        vertices = self._check_vertices(vertices)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        a, b = self._a, self._b
        is_left = vertices < a
        out = np.empty((vertices.size, k), dtype=np.int64)
        u = rng.random((vertices.size, k))
        # Left vertices sample the right part and vice versa.
        out[is_left] = a + (u[is_left] * b).astype(np.int64)
        out[~is_left] = (u[~is_left] * a).astype(np.int64)
        return out

    def to_csr(self) -> CSRGraph:
        a, b = self._a, self._b
        if a * b > 2**22:
            raise ValueError(
                f"refusing to materialise K_{{{a},{b}}}; intended for small n"
            )
        left = np.arange(a, dtype=np.int64)
        right = np.arange(a, a + b, dtype=np.int64)
        edges = np.stack(
            [np.repeat(left, b), np.tile(right, a)], axis=1
        )
        return CSRGraph.from_edges(a + b, edges, validate=False)


class CompleteMultipartiteGraph(Graph):
    """Complete multipartite graph with given part sizes.

    Vertex ``v`` is adjacent to every vertex outside its own part.  A
    uniform neighbour is a uniform element of ``{0..n-1}`` minus a
    contiguous block (its part), sampled by drawing on ``[0, n - s_i)``
    and shifting draws past the part's offset.

    With ``q`` equal parts of size ``n/q`` the minimum degree is
    ``n(1 - 1/q)``, i.e. ``α ≈ 1``: a dense non-complete host with
    heterogeneous local structure, good for stressing Theorem 1 beyond
    ``K_n``.
    """

    def __init__(self, sizes: list[int] | tuple[int, ...] | np.ndarray) -> None:
        sizes_arr = np.asarray(sizes, dtype=np.int64)
        if sizes_arr.ndim != 1 or sizes_arr.size < 2:
            raise ValueError("need at least two parts")
        if np.any(sizes_arr < 1):
            raise ValueError(f"part sizes must be >= 1, got {sizes_arr.tolist()}")
        self._sizes = sizes_arr
        self._offsets = np.concatenate([[0], np.cumsum(sizes_arr)])
        self._n = int(self._offsets[-1])
        self._part_of_cache: np.ndarray | None = None

    @property
    def _part_of(self) -> np.ndarray:
        """Part id of each vertex — the only O(n) state, built lazily so
        count-chain-only hosts (mega-``n``) never allocate it."""
        if self._part_of_cache is None:
            self._part_of_cache = np.repeat(
                np.arange(self._sizes.size, dtype=np.int64), self._sizes
            )
        return self._part_of_cache

    @property
    def part_sizes(self) -> np.ndarray:
        """Copy of the part-size array."""
        return self._sizes.copy()

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def degrees(self) -> np.ndarray:
        return self._n - self._sizes[self._part_of]

    @property
    def min_degree(self) -> int:
        return self._n - int(self._sizes.max())

    @property
    def max_degree(self) -> int:
        return self._n - int(self._sizes.min())

    @property
    def num_edges(self) -> int:
        # Python ints, not int64: sum(s_i^2) overflows numpy arithmetic
        # at the mega-n part sizes the count-chain path unlocks.
        return (self._n * self._n - sum(int(s) * int(s) for s in self._sizes)) // 2

    def _build_count_chain_kernel(self) -> "MultipartiteKernel":
        from repro.core.kernels import MultipartiteKernel

        return MultipartiteKernel(self._sizes)

    def sample_neighbors(
        self, vertices: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        vertices = self._check_vertices(vertices)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        part = self._part_of[vertices]
        size = self._sizes[part][:, None]
        offset = self._offsets[part][:, None]
        draws = (rng.random((vertices.size, k)) * (self._n - size)).astype(np.int64)
        # Draws at or past the excluded block jump over it.
        draws += np.where(draws >= offset, size, 0)
        return draws

    def to_csr(self) -> CSRGraph:
        if self._n > 3000:
            raise ValueError("materialisation intended for small n only")
        edges = []
        for v in range(self._n):
            pv = self._part_of[v]
            for w in range(v + 1, self._n):
                if self._part_of[w] != pv:
                    edges.append((v, w))
        return CSRGraph.from_edges(self._n, np.array(edges), validate=False)


class RookGraph(Graph):
    """The rook's graph on an ``m × m`` board (``n = m²``).

    Vertex ``(r, c)`` (encoded ``r·m + c``) is adjacent to all cells in the
    same row or column; the graph is ``2(m-1)``-regular, so
    ``d ≈ 2√n`` and ``α ≈ 1/2`` — a structured dense host sitting midway
    between expanders and ``K_n``, exercising Theorem 1 at a non-trivial
    density exponent.

    Sampling draws uniform on ``[0, 2(m-1))``: the first ``m-1`` values
    index row-neighbours, the rest column-neighbours; both use the
    skip-self shift of :class:`CompleteGraph` within the row/column.
    """

    def __init__(self, m: int) -> None:
        m = check_positive_int(m, "m")
        if m < 2:
            raise ValueError(f"rook graph needs board size m >= 2, got {m}")
        self._m = m

    @property
    def board_size(self) -> int:
        """Side length ``m`` of the board."""
        return self._m

    @property
    def num_vertices(self) -> int:
        return self._m * self._m

    @property
    def degrees(self) -> np.ndarray:
        return np.full(self._m * self._m, 2 * (self._m - 1), dtype=np.int64)

    def sample_neighbors(
        self, vertices: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        vertices = self._check_vertices(vertices)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        m = self._m
        row, col = vertices // m, vertices % m
        draws = rng.integers(0, 2 * (m - 1), size=(vertices.size, k), dtype=np.int64)
        in_row = draws < (m - 1)
        # Row move: new column index with self skipped.
        new_col = draws
        new_col = new_col + (new_col >= col[:, None])
        # Column move: re-base to [0, m-1) then skip self row.
        new_row = draws - (m - 1)
        new_row = new_row + (new_row >= row[:, None])
        out = np.where(
            in_row,
            row[:, None] * m + new_col,
            new_row * m + col[:, None],
        )
        return out

    def to_csr(self) -> CSRGraph:
        m = self._m
        if m > 80:
            raise ValueError("materialisation intended for small boards only")
        edges = []
        for r in range(m):
            for c in range(m):
                v = r * m + c
                for c2 in range(c + 1, m):
                    edges.append((v, r * m + c2))
                for r2 in range(r + 1, m):
                    edges.append((v, r2 * m + c))
        return CSRGraph.from_edges(m * m, np.array(edges), validate=False)
