"""Random and structured host-graph generators.

These produce the explicit hosts used across the experiment suite
(DESIGN.md §3): dense Erdős–Rényi and random-regular graphs for the main
Theorem 1 sweeps, power-law hosts for heterogeneous-degree stress tests,
ring lattices and polluted stars as *sparse controls* that violate the
minimum-degree hypothesis (E9), and a two-clique bridge as the adversarial
placement host (E12).

Everything is vectorised: edge lists are assembled with NumPy block
operations, never per-edge Python loops (optimisation guide: *vectorizing
for loops*).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive_int, check_probability

__all__ = [
    "erdos_renyi",
    "random_regular",
    "powerlaw_degree_graph",
    "ring_lattice",
    "two_clique_bridge",
    "star_polluted",
    "from_networkx",
]


def erdos_renyi(
    n: int,
    p: float,
    *,
    seed: SeedLike = None,
    ensure_connected_min_degree: bool = True,
    _block_rows: int = 512,
) -> CSRGraph:
    """Sample ``G(n, p)`` with dense-friendly blockwise edge generation.

    For the dense regime the paper targets (``p`` well above the
    connectivity threshold), ``G(n,p)`` has minimum degree concentrated at
    ``np`` and satisfies the Theorem 1 density hypothesis for
    ``p = n^{α-1}``.

    Parameters
    ----------
    n, p:
        Vertex count and edge probability.
    seed:
        Randomness (see :func:`repro.util.rng.as_generator`).
    ensure_connected_min_degree:
        If ``True`` (default), any isolated vertex — possible only far
        below the dense regime — is repaired by attaching one uniform
        random edge, keeping the dynamics well-defined.  The repair is
        recorded nowhere because in the experiment regimes it fires with
        probability ``< n·(1-p)^{n-1} ≈ 0``.
    _block_rows:
        Row-block size for the Bernoulli sweep; memory use is
        ``O(_block_rows · n)`` independent of the edge count.
    """
    n = check_positive_int(n, "n")
    p = check_probability(p, "p")
    if n < 2:
        raise ValueError(f"need n >= 2 vertices, got {n}")
    rng = as_generator(seed)
    chunks: list[np.ndarray] = []
    for start in range(0, n, _block_rows):
        stop = min(start + _block_rows, n)
        rows = np.arange(start, stop, dtype=np.int64)
        # Upper-triangle mask for this block: columns strictly greater
        # than the row index.
        u = rng.random((stop - start, n))
        mask = u < p
        cols = np.arange(n, dtype=np.int64)
        mask &= cols[None, :] > rows[:, None]
        r, c = np.nonzero(mask)
        if r.size:
            chunks.append(np.stack([rows[r], cols[c]], axis=1))
    if not chunks:
        raise ValueError(
            f"G(n={n}, p={p}) sample came out empty; p is too small for a "
            "usable voting host"
        )
    edges = np.concatenate(chunks, axis=0)
    if ensure_connected_min_degree:
        edges = _repair_isolated(n, edges, rng)
    return CSRGraph.from_edges(n, edges, validate=False)


def _repair_isolated(n: int, edges: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Attach one random edge to every degree-0 vertex in *edges*.

    The repair edges are deduplicated against each other (two isolated
    vertices may pick one another, which would otherwise create a
    parallel edge); they cannot duplicate existing edges because their
    isolated endpoint has none.
    """
    deg = np.bincount(edges.ravel(), minlength=n)
    isolated = np.nonzero(deg == 0)[0]
    if isolated.size == 0:
        return edges
    partners = rng.integers(0, n - 1, size=isolated.size)
    partners += partners >= isolated
    extra = np.stack(
        [np.minimum(isolated, partners), np.maximum(isolated, partners)], axis=1
    )
    extra = np.unique(extra, axis=0)
    return np.concatenate([edges, extra], axis=0)


def random_regular(
    n: int,
    d: int,
    *,
    seed: SeedLike = None,
    max_repair_rounds: int = 200,
) -> CSRGraph:
    """Sample a simple ``d``-regular graph via configuration-model repair.

    The pairing (configuration) model matches ``n·d`` half-edge stubs
    uniformly; self-loops and multi-edges are then removed by re-shuffling
    the offending stubs together with an equal number of randomly chosen
    good stubs, which preserves uniformity asymptotically and terminates
    quickly for ``d = o(√n)``.  Random ``d``-regular graphs are the host of
    the Cooper–Elsässer–Radzik Best-of-2 analysis [4] and a standard dense
    host for Theorem 1 with ``α = log d / log n``.

    Raises
    ------
    ValueError
        If ``n·d`` is odd or ``d >= n``.
    RuntimeError
        If repair fails to converge (pathologically dense requests).
    """
    n = check_positive_int(n, "n")
    d = check_positive_int(d, "d")
    if d >= n:
        raise ValueError(f"d must be < n, got d={d}, n={n}")
    if (n * d) % 2 != 0:
        raise ValueError(f"n*d must be even, got n={n}, d={d}")
    rng = as_generator(seed)

    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    rng.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)

    for _ in range(max_repair_rounds):
        bad = _bad_pair_mask(pairs)
        n_bad = int(bad.sum())
        if n_bad == 0:
            return CSRGraph.from_edges(n, pairs, validate=False)
        # Reshuffle bad pairs together with as many random good pairs.
        good_idx = np.nonzero(~bad)[0]
        take = min(good_idx.size, max(n_bad, 16))
        chosen_good = rng.choice(good_idx, size=take, replace=False)
        recycle_idx = np.concatenate([np.nonzero(bad)[0], chosen_good])
        pool = pairs[recycle_idx].ravel()
        rng.shuffle(pool)
        pairs[recycle_idx] = pool.reshape(-1, 2)
    # Dense requests (d a large fraction of n) can make stub-reshuffling
    # thrash; fall back to networkx's pairing-with-restart generator, which
    # is slower but certain.
    import networkx as nx

    nx_seed = int(rng.integers(0, 2**31 - 1))
    g = nx.random_regular_graph(d, n, seed=nx_seed)
    return CSRGraph.from_networkx(g, validate=False)


def _bad_pair_mask(pairs: np.ndarray) -> np.ndarray:
    """Mark pairs that are self-loops or duplicates of an earlier pair."""
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    self_loop = lo == hi
    key = lo * (pairs.max() + 2) + hi
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    dup_sorted = np.zeros(pairs.shape[0], dtype=bool)
    dup_sorted[1:] = sorted_key[1:] == sorted_key[:-1]
    dup = np.zeros(pairs.shape[0], dtype=bool)
    dup[order] = dup_sorted
    return self_loop | dup


def powerlaw_degree_graph(
    n: int,
    *,
    gamma: float = 2.5,
    d_min: int = 4,
    d_max: int | None = None,
    seed: SeedLike = None,
) -> CSRGraph:
    """Sample a graph with (truncated) power-law degrees via pairing repair.

    Degrees are drawn from ``P(D = x) ∝ x^{-gamma}`` on
    ``[d_min, d_max]`` (default cap ``⌊√n⌋`` keeps the pairing model
    simple-graph friendly), the total is evened, and the same repair
    procedure as :func:`random_regular` produces a simple graph.

    With ``d_min = n^α`` this family meets the Theorem 1 hypothesis while
    exhibiting heavy-tailed heterogeneity — the qualitative contrast with
    the bounded-average-degree setting of Abdullah–Draief [1].
    """
    n = check_positive_int(n, "n")
    d_min = check_positive_int(d_min, "d_min")
    if gamma <= 1.0:
        raise ValueError(f"gamma must be > 1 for a normalisable tail, got {gamma}")
    if d_max is None:
        d_max = max(d_min, int(np.sqrt(n)))
    d_max = check_positive_int(d_max, "d_max")
    if d_max < d_min:
        raise ValueError(f"d_max={d_max} must be >= d_min={d_min}")
    if d_max >= n:
        raise ValueError(f"d_max={d_max} must be < n={n}")
    rng = as_generator(seed)

    support = np.arange(d_min, d_max + 1, dtype=np.float64)
    weights = support**-gamma
    weights /= weights.sum()
    degrees = rng.choice(
        np.arange(d_min, d_max + 1, dtype=np.int64), size=n, p=weights
    )
    if int(degrees.sum()) % 2 == 1:
        degrees[int(rng.integers(0, n))] += 1

    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)
    for _ in range(400):
        bad = _bad_pair_mask(pairs)
        n_bad = int(bad.sum())
        if n_bad == 0:
            return CSRGraph.from_edges(n, pairs, validate=False)
        good_idx = np.nonzero(~bad)[0]
        take = min(good_idx.size, max(n_bad, 16))
        chosen_good = rng.choice(good_idx, size=take, replace=False)
        recycle_idx = np.concatenate([np.nonzero(bad)[0], chosen_good])
        pool = pairs[recycle_idx].ravel()
        rng.shuffle(pool)
        pairs[recycle_idx] = pool.reshape(-1, 2)
    raise RuntimeError(
        f"power-law pairing repair did not converge (n={n}, gamma={gamma})"
    )


def ring_lattice(n: int, d: int) -> CSRGraph:
    """The circulant ring lattice: each vertex joined to ``d/2`` on each side.

    Constant degree means ``α = log d / log n → 0``: this host *violates*
    the Theorem 1 density hypothesis and is the sparse control in the
    density-threshold experiment (E9) — consensus still happens but far
    slower than doubly-logarithmically.
    """
    n = check_positive_int(n, "n")
    d = check_positive_int(d, "d")
    if d % 2 != 0:
        raise ValueError(f"ring lattice degree must be even, got {d}")
    if d >= n:
        raise ValueError(f"d must be < n, got d={d}, n={n}")
    base = np.arange(n, dtype=np.int64)
    offsets = np.arange(1, d // 2 + 1, dtype=np.int64)
    u = np.repeat(base, offsets.size)
    v = (u + np.tile(offsets, n)) % n
    return CSRGraph.from_edges(n, np.stack([u, v], axis=1), validate=False)


def two_clique_bridge(half: int, *, bridges: int = 1) -> CSRGraph:
    """Two disjoint cliques of size *half* joined by *bridges* edges.

    The canonical bad host for *adversarial* opinion placement: putting all
    blue vertices in one clique stalls majority dynamics at the bridge.
    Used by E12 to contrast the paper's i.i.d. hypothesis with the
    adversarial setting of Cooper et al. [5].

    Bridge ``i`` connects vertex ``i`` of the left clique to vertex ``i``
    of the right clique.
    """
    half = check_positive_int(half, "half")
    bridges = check_positive_int(bridges, "bridges")
    if half < 2:
        raise ValueError(f"clique size must be >= 2, got {half}")
    if bridges > half:
        raise ValueError(f"bridges={bridges} cannot exceed clique size {half}")
    tri_r, tri_c = np.triu_indices(half, k=1)
    left = np.stack([tri_r, tri_c], axis=1).astype(np.int64)
    right = left + half
    cross = np.stack(
        [np.arange(bridges, dtype=np.int64), half + np.arange(bridges, dtype=np.int64)],
        axis=1,
    )
    edges = np.concatenate([left, right, cross], axis=0)
    graph = CSRGraph.from_edges(2 * half, edges, validate=False)
    # The generator knows the structure the CSR arrays no longer show:
    # two exchangeable cliques plus 2·bridges special endpoints.  Attach
    # the exact count-chain kernel so run_ensemble(method="auto") can
    # advance whole ensembles in O(1) slots per round (DESIGN.md §2.5).
    from repro.core.kernels import TwoCliqueBridgeKernel

    graph.attach_count_chain_kernel(TwoCliqueBridgeKernel(half, bridges))
    return graph


def star_polluted(core: int, pendants: int) -> CSRGraph:
    """A clique of size *core* with *pendants* degree-1 vertices attached.

    Pendant ``j`` hangs off core vertex ``j % core``.  The pendants force
    ``min_degree = 1`` hence ``α ≈ 0`` regardless of the dense core — the
    second sparse control for E9, showing the minimum-degree hypothesis
    (not average density) is what Theorem 1 consumes.
    """
    core = check_positive_int(core, "core")
    pendants = check_positive_int(pendants, "pendants")
    if core < 3:
        raise ValueError(f"core clique must have >= 3 vertices, got {core}")
    tri_r, tri_c = np.triu_indices(core, k=1)
    clique = np.stack([tri_r, tri_c], axis=1).astype(np.int64)
    pend_ids = core + np.arange(pendants, dtype=np.int64)
    anchors = np.arange(pendants, dtype=np.int64) % core
    pend_edges = np.stack([anchors, pend_ids], axis=1)
    edges = np.concatenate([clique, pend_edges], axis=0)
    return CSRGraph.from_edges(core + pendants, edges, validate=False)


def from_networkx(g) -> CSRGraph:
    """Convert any simple undirected :class:`networkx.Graph` to CSR."""
    return CSRGraph.from_networkx(g)
