"""Spectral diagnostics of host graphs.

The Best-of-2 expander condition of Cooper et al. [5] — cited in the
paper's introduction as the closest O(log n)-time result — is stated in
terms of ``λ₂``, the second largest *absolute* eigenvalue of the random
walk transition matrix ``P = D⁻¹A``: consensus on the initial majority
holds w.h.p. when ``d(R₀) − d(B₀) ≥ 4 λ₂² d(V)``.  Experiment E11
evaluates that predicate, so we need ``λ₂`` for explicit hosts.

``P`` is similar to the symmetric matrix ``N = D^{-1/2} A D^{-1/2}``
(similar via ``D^{1/2} P D^{-1/2} = N``), so its spectrum is real and we
can use Hermitian Lanczos (:func:`scipy.sparse.linalg.eigsh`) on ``N``.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["second_eigenvalue", "spectral_gap", "transition_spectrum"]


def transition_spectrum(graph: CSRGraph, k: int = 6) -> np.ndarray:
    """Return the *k* largest-magnitude eigenvalues of ``P = D⁻¹A``.

    Sorted by decreasing absolute value; the first entry is always 1 (the
    Perron eigenvalue of a connected graph).  For graphs with
    ``n <= 512`` a dense solve is used for robustness; otherwise Lanczos.
    """
    n = graph.num_vertices
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, n)
    a = graph.adjacency_scipy()
    d_inv_sqrt = 1.0 / np.sqrt(graph.degrees.astype(np.float64))
    if n <= 512:
        dense = a.toarray() * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]
        vals = np.linalg.eigvalsh(dense)
    else:
        import scipy.sparse as sp
        from scipy.sparse.linalg import eigsh

        scale = sp.diags(d_inv_sqrt)
        sym = scale @ a @ scale
        # Largest-magnitude ends of the spectrum: both ends matter because
        # lambda_2 is defined via absolute value (bipartite-ish graphs have
        # eigenvalues near -1).
        want = min(k + 1, n - 1)
        vals = eigsh(sym, k=want, which="BE", return_eigenvectors=False)
    order = np.argsort(-np.abs(vals), kind="stable")
    return vals[order][:k]


def second_eigenvalue(graph: CSRGraph) -> float:
    """``λ₂``: second largest absolute eigenvalue of the transition matrix.

    This is exactly the quantity in the [5] condition quoted in the
    paper's introduction.  Values near 0 mean strong expansion; values
    near 1 (or -1) mean bottlenecks (or near-bipartiteness).
    """
    spectrum = transition_spectrum(graph, k=2)
    if spectrum.size < 2:
        raise ValueError("graph too small for a second eigenvalue")
    return float(abs(spectrum[1]))


def spectral_gap(graph: CSRGraph) -> float:
    """``1 − λ₂`` — the absolute spectral gap of the random walk."""
    return 1.0 - second_eigenvalue(graph)
