"""Degree/density diagnostics tied to the paper's hypotheses.

Theorem 1 assumes minimum degree ``d = n^α`` with
``α = Ω(1/log log n)``; :func:`is_dense_for_theorem1` operationalises that
as ``α ≥ c / log log n`` for a caller-chosen constant ``c``.  The
*effective minimum degree* ``d̂_min`` of Abdullah–Draief [1] (smallest
degree value appearing ``Θ(n)`` times) is also provided because E8/E11
compare against the Best-of-k (k ≥ 5) regime whose hypothesis is stated in
terms of it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.base import Graph

__all__ = [
    "DegreeStatistics",
    "degree_statistics",
    "alpha_of",
    "is_dense_for_theorem1",
    "effective_min_degree",
]


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of a host graph's degree sequence."""

    n: int
    num_edges: int
    d_min: int
    d_max: int
    d_mean: float
    d_median: float
    alpha: float
    """Density exponent ``log d_min / log n`` (the paper's ``α``)."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} |E|={self.num_edges} d_min={self.d_min} "
            f"d_max={self.d_max} d_mean={self.d_mean:.1f} alpha={self.alpha:.3f}"
        )


def degree_statistics(graph: Graph) -> DegreeStatistics:
    """Compute :class:`DegreeStatistics` for *graph*."""
    deg = graph.degrees
    return DegreeStatistics(
        n=graph.num_vertices,
        num_edges=graph.num_edges,
        d_min=int(deg.min()),
        d_max=int(deg.max()),
        d_mean=float(deg.mean()),
        d_median=float(np.median(deg)),
        alpha=graph.alpha,
    )


def alpha_of(graph: Graph) -> float:
    """The paper's density exponent ``α = log(min_degree)/log(n)``."""
    return graph.alpha


def is_dense_for_theorem1(graph: Graph, *, c: float = 1.0) -> bool:
    """Check the Theorem 1 density hypothesis ``α ≥ c / log log n``.

    The paper requires ``α = Ω((log log n)⁻¹)``; asymptotic Ω hides a
    constant, so callers pick ``c`` (default 1).  Graphs with
    ``n ≤ e^e`` (where ``log log n ≤ 1``) are accepted iff ``α ≥ c``,
    the natural continuation of the formula.
    """
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")
    n = graph.num_vertices
    if n < 3:
        raise ValueError("density check needs n >= 3")
    loglog = math.log(math.log(n))
    threshold = c / max(loglog, 1e-12) if loglog > 0 else float("inf")
    if loglog <= 0:
        # n <= e: degenerate; treat as failing density (too small to say).
        return False
    return graph.alpha >= threshold


def effective_min_degree(graph: Graph, *, theta: float = 0.01) -> int:
    """Abdullah–Draief's ``d̂_min``: least degree occurring ``≥ theta·n`` times.

    [1] define the effective minimum degree as the smallest integer that
    appears ``Θ(n)`` times in the degree sequence; finite-``n`` practice
    needs an explicit fraction, so *theta* sets the cut-off (default 1%).
    Falls back to the true minimum degree when no value is frequent enough
    (e.g. all degrees distinct), which keeps the [1] hypothesis check
    conservative.
    """
    if not (0 < theta <= 1):
        raise ValueError(f"theta must lie in (0, 1], got {theta}")
    deg = graph.degrees
    n = graph.num_vertices
    values, counts = np.unique(deg, return_counts=True)
    frequent = values[counts >= theta * n]
    if frequent.size == 0:
        return int(deg.min())
    return int(frequent.min())
