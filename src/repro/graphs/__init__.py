"""Graph substrate for voting dynamics.

The paper's process only ever interacts with the host graph through one
operation: *sample k uniformly random neighbours of a vertex, with
replacement* (§2: "every vertex independently samples three random
neighbours").  :class:`repro.graphs.Graph` abstracts exactly that
operation, which lets the library run the identical dynamics law on

* explicit sparse/dense graphs held in CSR form (:class:`CSRGraph`), and
* *implicit* dense families (complete, complete multipartite, rook) whose
  neighbour distribution has a closed form, so graphs with Θ(n²) edges
  cost O(1) memory (:mod:`repro.graphs.implicit`).

Generators for the host-graph families used by the experiments live in
:mod:`repro.graphs.generators`; spectral tools (λ₂, used by the Best-of-2
expander condition of Cooper et al. [5]) in :mod:`repro.graphs.spectral`;
and density/min-degree diagnostics tied to the Theorem 1 hypotheses in
:mod:`repro.graphs.properties`.
"""

from repro.graphs.base import Graph
from repro.graphs.csr import CSRGraph
from repro.graphs.expanders import (
    hypercube,
    margulis_torus,
    paley_like_circulant,
)
from repro.graphs.generators import (
    erdos_renyi,
    from_networkx,
    powerlaw_degree_graph,
    random_regular,
    ring_lattice,
    star_polluted,
    two_clique_bridge,
)
from repro.graphs.implicit import (
    CompleteBipartiteGraph,
    CompleteGraph,
    CompleteMultipartiteGraph,
    RookGraph,
)
from repro.graphs.properties import (
    alpha_of,
    degree_statistics,
    effective_min_degree,
    is_dense_for_theorem1,
)
from repro.graphs.spectral import second_eigenvalue, spectral_gap

__all__ = [
    "Graph",
    "CSRGraph",
    "CompleteGraph",
    "CompleteBipartiteGraph",
    "CompleteMultipartiteGraph",
    "RookGraph",
    "erdos_renyi",
    "random_regular",
    "powerlaw_degree_graph",
    "ring_lattice",
    "two_clique_bridge",
    "star_polluted",
    "from_networkx",
    "alpha_of",
    "degree_statistics",
    "effective_min_degree",
    "is_dense_for_theorem1",
    "second_eigenvalue",
    "spectral_gap",
    "hypercube",
    "margulis_torus",
    "paley_like_circulant",
]
