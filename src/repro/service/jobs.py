"""Async sweep jobs: durable grid execution behind ``POST /v1/sweeps``.

A *job* is one :class:`~repro.sweeps.spec.SweepSpec` executed through
the PR-6 fault-tolerance stack — the durable
:class:`~repro.sweeps.queue.WorkQueue` spool, lease/retry/quarantine
semantics, and (optionally) a monitored ``repro worker`` subprocess
fleet — with the HTTP surface reduced to *submit* and *poll*.  Results
never travel through the job layer: workers write payloads to the
shared content-addressed :class:`~repro.sweeps.cache.SweepCache` before
marking points done (the queue's durability contract), and the job
manager reads them back from the cache when asked.

Identity and idempotency
------------------------
``job_id`` is a content address: the SHA-256 of the spec's canonical
form (name + canonical points, labels excluded).  Submitting the same
grid twice — same client retrying, two clients asking the same
question — returns the *same* job rather than spooling duplicate work,
exactly parallel to how the cache and the micro-batcher treat
identical points.  Each job owns one spool directory
``<spool_root>/<job_id>/`` holding the queue database plus a
``job.json`` manifest (schema, spec content, per-point labels,
submission bookkeeping), so a fresh :class:`JobManager` — service
restart, another process — re-attaches to existing jobs from disk alone.

Execution
---------
Points already in the cache at submission never touch the queue (a
fully warm grid is *born* done).  Misses are enqueued and drained in
the background: with ``workers == 0`` a daemon thread in this process
runs the standard :func:`~repro.sweeps.scheduler.run_worker` loop;
with ``workers > 0`` that many ``repro worker`` subprocesses are
spawned and babysat — dead workers are reaped, their leases released
immediately, and replacements spawned within a bounded budget — the
same recovery discipline as ``repro sweep --workers N``.  A job
survives the death of every worker *and* of the service itself: the
spool is the source of truth, and re-attaching resumes from whatever
landed.

The spool root must live **outside** the cache root: the cache GC
treats every ``*.json`` under its shards as an entry, and job manifests
must never look like evictable results.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Iterator

from repro.analysis.tables import (
    SWEEP_SUMMARY_COLUMNS,
    format_table,
    sweep_summary_rows,
)
from repro.io.results import payload_to_dict
from repro.sweeps.cache import SweepCache
from repro.sweeps.queue import WorkQueue, queue_key
from repro.sweeps.scheduler import run_worker, worker_env
from repro.sweeps.spec import (
    Point,
    SweepSpec,
    canonical_json,
    canonical_point,
    estimated_cost,
    point_from_canonical,
)

__all__ = ["JOB_MANIFEST", "JobManager", "job_id_for", "json_safe_cell"]

JOB_MANIFEST = "job.json"
MANIFEST_SCHEMA = "repro.service_job/1"


def job_id_for(spec: SweepSpec) -> str:
    """Content-addressed job id of *spec* (labels excluded).

    Two submissions describing the same simulations get the same id —
    and therefore the same spool — however they were phrased.
    """
    body = canonical_json(
        {
            "name": spec.name,
            "points": [canonical_point(p) for p in spec.points],
        }
    )
    return "j" + hashlib.sha256(body.encode("ascii")).hexdigest()[:16]


class _JobRecord:
    """One job's in-memory view: spec + spool paths + drain thread."""

    def __init__(self, job_id: str, spec: SweepSpec, spool: Path) -> None:
        self.job_id = job_id
        self.spec = spec
        self.spool = spool
        self.thread: threading.Thread | None = None
        self.error: str | None = None


class JobManager:
    """Submit, execute, and poll durable sweep jobs.

    One instance per service process.  All public methods are thread
    safe (HTTP handler threads call them concurrently); SQLite
    connections are never shared across threads — every status read
    opens the job's queue fresh, which WAL mode makes cheap.
    """

    def __init__(
        self,
        spool_root: str | Path,
        cache: SweepCache,
        *,
        workers: int = 0,
        lease_ttl_s: float = 60.0,
        max_attempts: int = 3,
    ) -> None:
        if cache is None:
            raise ValueError("jobs need the cache: results travel through it")
        self.spool_root = Path(spool_root)
        self.cache = cache
        self.workers = workers
        self.lease_ttl_s = lease_ttl_s
        self.max_attempts = max_attempts
        self._lock = threading.Lock()
        self._jobs: dict[str, _JobRecord] = {}

    # -- submission ----------------------------------------------------

    def submit(self, spec: SweepSpec) -> tuple[str, bool]:
        """Spool *spec*; returns ``(job_id, created)``.

        Idempotent: a spec whose job already exists (in this process or
        on disk from a previous one) re-attaches instead of re-spooling,
        and ``created`` is ``False``.  Cache-warm points are marked done
        at birth; only misses enter the queue.
        """
        job_id = job_id_for(spec)
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                spool = self.spool_root / job_id
                created = not (spool / JOB_MANIFEST).exists()
                record = _JobRecord(job_id, spec, spool)
                self._jobs[job_id] = record
                if created:
                    self._spool_new(record)
                self._ensure_draining(record)
                return job_id, created
        # Known job: make sure its drain loop is still alive (a previous
        # submit's thread may have finished with work left after a
        # fault-heavy run).
        with self._lock:
            self._ensure_draining(record)
        return job_id, False

    def _spool_new(self, record: _JobRecord) -> None:
        """First submission: probe cache, enqueue misses, write manifest."""
        spec = record.spec
        warm: list[str] = []
        pending: list[Point] = []
        for point in spec.points:
            if self.cache.get(point) is not None:
                warm.append(queue_key(point))
            else:
                pending.append(point)
        queue = WorkQueue(record.spool, max_attempts=self.max_attempts)
        try:
            if pending:
                queue.enqueue(pending)
        finally:
            queue.close()
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "job_id": record.job_id,
            "name": spec.name,
            "points": [canonical_point(p) for p in spec.points],
            "labels": [p.label for p in spec.points],
            "warm_at_submit": warm,
            "submitted_at": time.time(),
            "workers": self.workers,
        }
        path = record.spool / JOB_MANIFEST
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(manifest, indent=1) + "\n", encoding="utf-8")
        os.replace(tmp, path)

    def _load(self, job_id: str) -> _JobRecord | None:
        """The record for *job_id*, re-attaching from disk if needed."""
        with self._lock:
            record = self._jobs.get(job_id)
            if record is not None:
                return record
            path = self.spool_root / job_id / JOB_MANIFEST
            try:
                manifest = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                return None
            if manifest.get("schema") != MANIFEST_SCHEMA:
                return None
            labels = manifest.get("labels", [])
            points = tuple(
                point_from_canonical(
                    content, label=labels[i] if i < len(labels) else ""
                )
                for i, content in enumerate(manifest["points"])
            )
            spec = SweepSpec(name=manifest.get("name", job_id), points=points)
            record = _JobRecord(job_id, spec, self.spool_root / job_id)
            self._jobs[job_id] = record
            self._ensure_draining(record)
            return record

    # -- execution -----------------------------------------------------

    def _ensure_draining(self, record: _JobRecord) -> None:
        """Start the background drain for *record* if it needs one.

        Caller holds ``self._lock``.  No-ops when a drain thread is
        already running or nothing is unfinished (fully warm job, or a
        completed/quarantined spool).
        """
        if record.thread is not None and record.thread.is_alive():
            return
        queue = WorkQueue(record.spool, max_attempts=self.max_attempts)
        try:
            unfinished = queue.unfinished()
        finally:
            queue.close()
        if unfinished == 0:
            return
        target = self._drain_subprocesses if self.workers > 0 else self._drain_inline
        record.thread = threading.Thread(
            target=target,
            args=(record,),
            name=f"repro-job-{record.job_id[:8]}",
            daemon=True,
        )
        record.thread.start()

    def _drain_inline(self, record: _JobRecord) -> None:
        """workers == 0: this process drains the spool in a thread."""
        try:
            run_worker(
                record.spool,
                self.cache,
                worker_id=f"service-{os.getpid()}",
                lease_ttl_s=self.lease_ttl_s,
            )
        except Exception as exc:  # pragma: no cover - defensive
            record.error = f"{type(exc).__name__}: {exc}"

    def _drain_subprocesses(self, record: _JobRecord) -> None:
        """workers > 0: spawn and babysit a ``repro worker`` fleet.

        The same reap → release_worker → respawn loop as the sweep
        scheduler's spool backend, with the same bounded respawn budget;
        if the fleet exhausts its budget with work left, the drain
        finishes inline so a submitted job always reaches a terminal
        state.
        """
        env = worker_env()
        queue = WorkQueue(record.spool, max_attempts=self.max_attempts)
        respawn_budget = self.workers * self.max_attempts
        procs: dict[str, subprocess.Popen] = {}
        spawned = 0

        def _spawn() -> None:
            nonlocal spawned
            spawned += 1
            wid = f"job-{record.job_id[:8]}-worker-{spawned}"
            procs[wid] = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "worker",
                    "--spool",
                    str(record.spool),
                    "--cache-dir",
                    str(self.cache.root),
                    "--worker-id",
                    wid,
                    "--lease-ttl",
                    str(self.lease_ttl_s),
                ],
                env=env,
            )

        try:
            for _ in range(self.workers):
                _spawn()
            while queue.unfinished() > 0:
                queue.requeue_expired()
                for wid, proc in list(procs.items()):
                    if proc.poll() is None:
                        continue
                    del procs[wid]
                    queue.release_worker(wid)
                    if queue.unfinished() > 0 and spawned < respawn_budget:
                        _spawn()
                if not procs and queue.unfinished() > 0:
                    run_worker(
                        record.spool,
                        self.cache,
                        worker_id=f"service-{os.getpid()}",
                        lease_ttl_s=self.lease_ttl_s,
                    )
                    break
                time.sleep(0.05)
            for proc in procs.values():
                proc.wait(timeout=60.0)
        except Exception as exc:  # pragma: no cover - defensive
            record.error = f"{type(exc).__name__}: {exc}"
            for proc in procs.values():
                proc.terminate()
        finally:
            queue.close()

    # -- polling -------------------------------------------------------

    def _point_states(
        self, record: _JobRecord
    ) -> list[tuple[Point, str, Any]]:
        """``(point, state, payload)`` per spec point, declaration order.

        *state* is ``done`` / ``pending`` / ``leased`` / ``failed``.
        A queue row marked done whose cache entry vanished (evicted, or
        invalidated by a code edit between submit and poll) degrades to
        ``failed`` rather than lying about a payload it cannot produce.
        """
        queue = WorkQueue(record.spool, max_attempts=self.max_attempts)
        try:
            queue.requeue_expired()
            states = queue.states()
        finally:
            queue.close()
        out: list[tuple[Point, str, Any]] = []
        for point in record.spec.points:
            key = queue_key(point)
            row = states.get(key)
            if row is None:
                # Never enqueued: warm at submission.
                payload = self.cache.get(point)
                out.append(
                    (point, "done" if payload is not None else "failed", payload)
                )
                continue
            state, _error, _attempts = row
            if state == "done":
                payload = self.cache.get(point)
                out.append(
                    (point, "done" if payload is not None else "failed", payload)
                )
            elif state == "poisoned":
                out.append((point, "failed", None))
            else:
                out.append((point, state, None))
        return out

    def status(self, job_id: str) -> dict[str, Any] | None:
        """The poll payload for ``GET /v1/jobs/{id}`` (``None``: unknown).

        ``state`` is ``running`` while any point is non-terminal,
        ``done`` when every point has a payload, ``failed`` when all
        points are terminal but some are quarantined or lost their
        cached result.  Progress is reported both in points and in
        :func:`~repro.sweeps.spec.estimated_cost` units — the cost share
        is what makes the ETA honest when one mega point dominates a
        grid of cheap ones.
        """
        record = self._load(job_id)
        if record is None:
            return None
        triples = self._point_states(record)
        total = len(triples)
        done = sum(1 for _, state, _ in triples if state == "done")
        failed = sum(1 for _, state, _ in triples if state == "failed")
        terminal = done + failed
        cost_total = sum(estimated_cost(p) for p, _, _ in triples)
        cost_done = sum(
            estimated_cost(p) for p, state, _ in triples if state in ("done", "failed")
        )
        queue = WorkQueue(record.spool, max_attempts=self.max_attempts)
        try:
            qstats = queue.stats()
        finally:
            queue.close()
        if terminal == total:
            state = "failed" if failed else "done"
        else:
            state = "running"
        return {
            "job_id": job_id,
            "name": record.spec.name,
            "state": state,
            "points": total,
            "done": done,
            "failed": failed,
            "running": total - terminal,
            "cost_total": cost_total,
            "cost_done": cost_done,
            "progress": round(cost_done / cost_total, 4) if cost_total else 1.0,
            "queue": {
                "pending": qstats.pending,
                "leased": qstats.leased,
                "done": qstats.done,
                "poisoned": qstats.poisoned,
                "retries": qstats.retries,
                "requeues": qstats.requeues,
            },
            "error": record.error,
        }

    def rows(self, job_id: str) -> list[dict[str, Any]] | None:
        """Summary rows for every *terminal* point so far (partial OK).

        Each row is the job-stream form of one
        :data:`~repro.analysis.tables.SWEEP_SUMMARY_COLUMNS` table row:
        ``{"point": label, "status": ..., "row": {column: value}}`` in
        declaration order, restricted to points that are already done or
        failed — poll again for more.  Values are JSON-safe (NaN renders
        as the string ``"nan"``).
        """
        record = self._load(job_id)
        if record is None:
            return None
        out = []
        for point, state, payload in self._point_states(record):
            if state not in ("done", "failed"):
                continue
            (row,) = sweep_summary_rows([(point, payload)])
            out.append(
                {
                    "point": point.label,
                    "status": state,
                    "row": {k: json_safe_cell(v) for k, v in row.items()},
                }
            )
        return out

    def iter_rows(
        self, job_id: str, *, poll_s: float = 0.05, timeout_s: float | None = None
    ) -> Iterator[dict[str, Any]]:
        """Yield each point's row as it lands, until the job is terminal.

        The NDJSON streaming source for ``GET /v1/jobs/{id}/rows?stream=1``:
        rows surface in completion order (re-checked every *poll_s*),
        each exactly once.  Stops when every point is terminal or after
        *timeout_s* (``None``: wait for the job).
        """
        record = self._load(job_id)
        if record is None:
            return
        emitted: set[str] = set()
        deadline = None if timeout_s is None else time.time() + timeout_s
        while True:
            pending = False
            for point, state, payload in self._point_states(record):
                key = queue_key(point)
                if state in ("done", "failed"):
                    if key not in emitted:
                        emitted.add(key)
                        (row,) = sweep_summary_rows([(point, payload)])
                        yield {
                            "point": point.label,
                            "status": state,
                            "row": {k: json_safe_cell(v) for k, v in row.items()},
                        }
                else:
                    pending = True
            if not pending:
                return
            if deadline is not None and time.time() >= deadline:
                return
            time.sleep(poll_s)

    def table(self, job_id: str) -> str | None:
        """The job's summary table — byte-identical to ``repro sweep``.

        Built from the same :data:`SWEEP_SUMMARY_COLUMNS` /
        :func:`sweep_summary_rows` pair the CLI renders with, over the
        same ``(point, payload)`` pairs in declaration order, so a grid
        run via the API and the same grid run via ``repro sweep`` print
        the same bytes.  Non-terminal points render as failed rows —
        ask :meth:`status` first if partiality matters.
        """
        record = self._load(job_id)
        if record is None:
            return None
        pairs = [
            (point, payload) for point, _state, payload in self._point_states(record)
        ]
        return format_table(SWEEP_SUMMARY_COLUMNS, sweep_summary_rows(pairs))

    def results(self, job_id: str) -> dict[str, Any] | None:
        """Full payloads of every done point, serialised for transport."""
        record = self._load(job_id)
        if record is None:
            return None
        out: dict[str, Any] = {}
        for point, state, payload in self._point_states(record):
            if state == "done":
                out[point.label or queue_key(point)[:12]] = payload_to_dict(payload)
        return out

    def list_jobs(self) -> list[dict[str, Any]]:
        """Submission-time info for every job visible in the spool root."""
        jobs = []
        try:
            candidates = sorted(self.spool_root.iterdir())
        except OSError:
            return []
        for path in candidates:
            if not (path / JOB_MANIFEST).is_file():
                continue
            status = self.status(path.name)
            if status is not None:
                jobs.append(status)
        return jobs

    def queue_depth(self) -> int:
        """Unfinished points across every known job (the stats view)."""
        depth = 0
        for status in self.list_jobs():
            depth += status["queue"]["pending"] + status["queue"]["leased"]
        return depth

    def worker_liveness(self) -> dict[str, Any]:
        """Drain-thread liveness per in-memory job (the stats view)."""
        with self._lock:
            records = list(self._jobs.values())
        alive = sum(
            1 for r in records if r.thread is not None and r.thread.is_alive()
        )
        return {
            "jobs_attached": len(records),
            "drains_alive": alive,
            "workers_per_job": self.workers,
        }


def json_safe_cell(value: Any) -> Any:
    """Row cells as strict-JSON values (NaN → ``"nan"``)."""
    if isinstance(value, float) and value != value:
        return "nan"
    return value
