"""Request validation: JSON bodies → canonical sweep specs.

Everything the HTTP surface accepts is parsed here into the *existing*
declarative dataclasses (:class:`~repro.sweeps.spec.Point`,
:class:`~repro.sweeps.spec.SweepSpec`) before any engine code runs.
That choice is what makes the service cache-coherent for free: two
clients phrasing the same query differently (``"protocol": "best-of-3"``
versus ``{"kind": "best_of_k", "k": 3}``) canonicalise to the same
:func:`~repro.sweeps.spec.canonical_point` bytes, hence the same
:class:`~repro.sweeps.cache.SweepCache` key, the same micro-batch
flight, and the same job id.

Invalid input raises :class:`RequestError`, which the HTTP layer maps to
a 400 with the message in the body — the underlying dataclass
``ValueError`` messages (already written for humans) pass through
verbatim.

Accepted shapes
---------------
host      ``{"family": "complete", "n": 4096}`` — family plus the
          family's constructor params, flat.
protocol  a string (``"voter"``, ``"best-of-3"``, ``"best-of-2-rand"``)
          or a dict: ``{"kind": "best_of_k", "k": 3, "tie_rule":
          "keep_self", "eta": ..., "zealots": ..., "threads": ...}``
          with every field optional but ``kind``-consistent.  Default:
          ``best-of-3``; ``threads`` pins the dense engine's layout
          (``"auto"``/``"serial"``/int) instead of the service default.
init      sugar ``{"delta": 0.1}`` (i.i.d. bias) or ``{"blue": 100}``
          (exact count), or explicit ``{"kind": "adversarial", "blue":
          100, "strategy": "high_degree"}``.  Default: ``delta=0.1``.
point     ``{"host": ..., "protocol": ..., "init": ..., "trials": 10,
          "max_steps": 2000, "seed": 0}`` — seed may be an int or a
          list of ints.
compare   a point request whose ``protocols`` is a list (≥ 2) of
          protocol shapes; all other fields shared.
sweep     ``{"name": ..., "hosts": [...], "protocols": [...],
          "inits": [...], "trials": ..., "max_steps": ..., "seed": N}``
          — the grid product with per-point derived seeds, exactly
          :meth:`SweepSpec.grid`.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.sweeps.spec import (
    HostSpec,
    InitSpec,
    Point,
    ProtocolSpec,
    SweepSpec,
)

__all__ = [
    "DEFAULT_MAX_STEPS",
    "DEFAULT_TRIALS",
    "RequestError",
    "parse_compare_request",
    "parse_host",
    "parse_init",
    "parse_point_request",
    "parse_protocol",
    "parse_sweep_request",
]

DEFAULT_TRIALS = 10
DEFAULT_MAX_STEPS = 2000

_POINT_KEYS = frozenset(
    {"host", "protocol", "init", "trials", "max_steps", "seed", "label"}
)
_COMPARE_KEYS = (_POINT_KEYS - {"protocol"}) | {"protocols"}
_SWEEP_KEYS = frozenset(
    {"name", "hosts", "protocols", "inits", "trials", "max_steps", "seed"}
)


class RequestError(ValueError):
    """A request body that cannot be turned into a valid spec (HTTP 400)."""


def _require_mapping(value: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise RequestError(f"{what} must be a JSON object, got {type(value).__name__}")
    return value

def _reject_unknown(body: Mapping[str, Any], allowed: frozenset, what: str) -> None:
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise RequestError(
            f"unknown {what} field(s): {', '.join(unknown)} "
            f"(accepted: {', '.join(sorted(allowed))})"
        )


def parse_host(value: Any) -> HostSpec:
    """``{"family": ..., **params}`` → :class:`HostSpec`."""
    body = dict(_require_mapping(value, "host"))
    family = body.pop("family", None)
    if not isinstance(family, str) or not family:
        raise RequestError('host needs a "family" string (e.g. "complete")')
    try:
        host = HostSpec.of(family, **body)
    except TypeError as exc:
        raise RequestError(f"bad host params: {exc}") from None
    # Unknown families / missing params surface when the runner builds the
    # graph; catch them at validation time instead so the client gets a 400,
    # not a failed job.
    from repro.sweeps.runner import host_families

    if family not in host_families():
        raise RequestError(
            f"unknown host family {family!r}; known: "
            f"{', '.join(host_families())}"
        )
    return host


def parse_protocol(value: Any) -> ProtocolSpec:
    """A protocol name string or structured dict → :class:`ProtocolSpec`."""
    if value is None:
        return ProtocolSpec.best_of(3)
    if isinstance(value, str):
        try:
            return ProtocolSpec.parse(value)
        except ValueError as exc:
            raise RequestError(str(exc)) from None
    body = _require_mapping(value, "protocol")
    _reject_unknown(
        body,
        frozenset({"kind", "k", "tie_rule", "eta", "zealots", "threads"}),
        "protocol",
    )
    kwargs = {
        k: body[k]
        for k in ("kind", "k", "tie_rule", "eta", "zealots", "threads")
        if k in body
    }
    try:
        return ProtocolSpec(**kwargs)
    except (TypeError, ValueError) as exc:
        raise RequestError(f"bad protocol: {exc}") from None


def parse_init(value: Any) -> InitSpec:
    """Init sugar (``{"delta": ...}`` / ``{"blue": ...}``) or explicit kind."""
    if value is None:
        return InitSpec.iid(0.1)
    body = _require_mapping(value, "init")
    _reject_unknown(
        body, frozenset({"kind", "delta", "blue", "strategy"}), "init"
    )
    try:
        if "kind" in body:
            return InitSpec(
                kind=body["kind"],
                delta=body.get("delta"),
                blue=body.get("blue"),
                strategy=body.get("strategy"),
            )
        if "delta" in body and "blue" not in body:
            return InitSpec.iid(body["delta"])
        if "blue" in body and "delta" not in body:
            if "strategy" in body:
                return InitSpec.adversarial(body["blue"], body["strategy"])
            return InitSpec.count(body["blue"])
    except (TypeError, ValueError) as exc:
        raise RequestError(f"bad init: {exc}") from None
    raise RequestError(
        'init needs "delta" OR "blue" (optionally with "strategy"), '
        'or an explicit "kind"'
    )


def _parse_seed(value: Any) -> tuple[int, ...]:
    if value is None:
        return (0,)
    if isinstance(value, bool):
        raise RequestError("seed must be an int or list of ints")
    if isinstance(value, int):
        return (value,)
    if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        try:
            return tuple(int(v) for v in value)
        except (TypeError, ValueError):
            raise RequestError("seed must be an int or list of ints") from None
    raise RequestError("seed must be an int or list of ints")


def _parse_budget(body: Mapping[str, Any]) -> tuple[int, int]:
    """(trials, max_steps) with service defaults."""
    trials = body.get("trials", DEFAULT_TRIALS)
    max_steps = body.get("max_steps", DEFAULT_MAX_STEPS)
    if not isinstance(trials, int) or isinstance(trials, bool):
        raise RequestError("trials must be an int")
    if not isinstance(max_steps, int) or isinstance(max_steps, bool):
        raise RequestError("max_steps must be an int")
    return trials, max_steps


def parse_point_request(body: Any) -> Point:
    """A ``POST /v1/ensemble`` body → one canonical :class:`Point`."""
    body = _require_mapping(body, "request body")
    _reject_unknown(body, _POINT_KEYS, "ensemble request")
    if "host" not in body:
        raise RequestError('ensemble request needs a "host"')
    trials, max_steps = _parse_budget(body)
    label = body.get("label", "")
    if not isinstance(label, str):
        raise RequestError("label must be a string")
    try:
        return Point(
            host=parse_host(body["host"]),
            protocol=parse_protocol(body.get("protocol")),
            init=parse_init(body.get("init")),
            trials=trials,
            max_steps=max_steps,
            seed=_parse_seed(body.get("seed")),
            label=label,
        )
    except RequestError:
        raise
    except ValueError as exc:
        raise RequestError(str(exc)) from None


def parse_compare_request(body: Any) -> list[Point]:
    """A ``POST /v1/compare`` body → one point per listed protocol.

    All points share host, init, budget, and seed — the protocol is the
    only varying axis, so the comparison isolates the dynamics exactly
    the way the paper's protocol contrasts do.
    """
    body = _require_mapping(body, "request body")
    _reject_unknown(body, _COMPARE_KEYS, "compare request")
    protocols = body.get("protocols")
    if not isinstance(protocols, Sequence) or isinstance(protocols, (str, bytes)):
        raise RequestError('compare request needs a "protocols" list')
    if len(protocols) < 2:
        raise RequestError("compare request needs at least 2 protocols")
    base = dict(body)
    del base["protocols"]
    points = []
    for proto in protocols:
        spec = parse_protocol(proto)
        point = parse_point_request({**base, "protocol": None})
        point = _with_protocol(point, spec)
        points.append(point)
    labels = {p.label for p in points}
    if len(labels) < len(points):
        points = [
            _with_label(p, f"{p.label + ' ' if p.label else ''}[{_protocol_name(p.protocol)}]")
            for p in points
        ]
    return points


def _with_protocol(point: Point, protocol: ProtocolSpec) -> Point:
    import dataclasses

    return dataclasses.replace(point, protocol=protocol)


def _with_label(point: Point, label: str) -> Point:
    import dataclasses

    return dataclasses.replace(point, label=label)


def _protocol_name(spec: ProtocolSpec) -> str:
    bits = [f"{spec.kind} k={spec.k}/{spec.tie_rule}"]
    if spec.eta is not None:
        bits.append(f"eta={spec.eta}")
    if spec.zealots is not None:
        bits.append(f"zealots={spec.zealots}")
    return " ".join(bits)


def parse_sweep_request(body: Any) -> SweepSpec:
    """A ``POST /v1/sweeps`` body → a :class:`SweepSpec` grid.

    Identical semantics to building the grid in Python: per-point seeds
    derived from the root ``seed``, duplicate axis values deduplicated,
    labels generated by :meth:`SweepSpec.grid`.  A grid submitted over
    HTTP and the same grid run via ``repro sweep`` therefore share cache
    entries *and* render byte-identical summary tables.
    """
    body = _require_mapping(body, "request body")
    _reject_unknown(body, _SWEEP_KEYS, "sweep request")
    name = body.get("name", "service-sweep")
    if not isinstance(name, str) or not name:
        raise RequestError("sweep name must be a non-empty string")
    hosts_raw = body.get("hosts")
    if not isinstance(hosts_raw, Sequence) or isinstance(hosts_raw, (str, bytes)) or not hosts_raw:
        raise RequestError('sweep request needs a non-empty "hosts" list')
    protocols_raw = body.get("protocols") or ["best-of-3"]
    if not isinstance(protocols_raw, Sequence) or isinstance(protocols_raw, (str, bytes)):
        raise RequestError('"protocols" must be a list')
    inits_raw = body.get("inits") or [{"delta": 0.1}]
    if not isinstance(inits_raw, Sequence) or isinstance(inits_raw, (str, bytes)):
        raise RequestError('"inits" must be a list')
    trials, max_steps = _parse_budget(body)
    seed = body.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        seed_tuple = _parse_seed(seed)
    else:
        seed_tuple = (seed,)
    try:
        return SweepSpec.grid(
            name,
            hosts=[parse_host(h) for h in hosts_raw],
            protocols=[parse_protocol(p) for p in protocols_raw],
            inits=[parse_init(i) for i in inits_raw],
            trials=trials,
            max_steps=max_steps,
            seed=seed_tuple,
        )
    except RequestError:
        raise
    except ValueError as exc:
        raise RequestError(str(exc)) from None
