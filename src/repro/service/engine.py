"""The service's synchronous execution facade: cache → batcher → engine.

One :class:`ServiceEngine` instance serves a whole ``repro serve``
process.  Every synchronous endpoint (``/v1/ensemble``, ``/v1/compare``)
funnels through :meth:`execute`, which layers the two service-side
optimisations over the plain library call:

1. **Cache probe** — a point already simulated (by anyone: a previous
   request, a ``repro sweep`` run on the same cache volume, a job
   worker) is served from the content-addressed
   :class:`~repro.sweeps.cache.SweepCache` with zero engine work;
2. **Single-flight micro-batching** — concurrent identical misses
   coalesce into one engine call through the
   :class:`~repro.service.batcher.MicroBatcher`; the computed payload
   is written back to the cache before followers are released, so the
   burst leaves exactly one engine call and one cache entry behind.

The compute path re-probes the cache *inside* the flight: a request
that probed (miss), then lost the race to attach to the winning flight,
starts a new flight whose first act is finding the fresh entry — the
probe→flight window can cost a redundant cache read, never a redundant
simulation.

All counters are monotonically increasing process-lifetime totals,
maintained under one lock so ``/v1/stats`` reads a consistent snapshot.
The engine holds no per-request mutable state anywhere else — the
request path is reentrant by construction (module functions +
per-instance locks; see also the host-memo lock in
:mod:`repro.sweeps.runner`).

``execute`` calls :func:`repro.sweeps.runner.execute_point` through the
module attribute (``runner.execute_point``), not a bound import, so
tests monkeypatch the runner module and the service picks it up.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.service.batcher import MicroBatcher
from repro.sweeps import runner
from repro.sweeps.cache import SweepCache
from repro.sweeps.spec import Point

__all__ = ["ServiceEngine"]


class ServiceEngine:
    """Cache-fronted, burst-coalescing point executor."""

    def __init__(
        self,
        cache: SweepCache | None = None,
        *,
        batch_window_s: float = 0.0,
    ) -> None:
        self.cache = cache if cache is not None else SweepCache()
        self.batcher = MicroBatcher(window_s=batch_window_s)
        self._lock = threading.Lock()
        self._requests = 0
        self._cache_hits = 0
        self._engine_calls = 0
        self._started = time.time()

    def execute(self, point: Point) -> tuple[Any, bool]:
        """``(payload, cached)`` for one canonical point.

        *cached* is true when no engine call ran on behalf of this
        request — a direct cache hit, a follower ride on another
        request's flight, or an in-flight re-probe hit.
        """
        with self._lock:
            self._requests += 1
        hit = self.cache.get(point)
        if hit is not None:
            with self._lock:
                self._cache_hits += 1
            return hit, True
        engine_ran = False

        def _compute(p: Point) -> Any:
            nonlocal engine_ran
            rehit = self.cache.get(p)
            if rehit is not None:
                return rehit
            engine_ran = True
            with self._lock:
                self._engine_calls += 1
            payload = runner.execute_point(p)
            self.cache.put(p, payload)
            return payload

        payload = self.batcher.run(point, _compute)
        if not engine_ran:
            # Served by a follower ride or an in-flight cache re-probe;
            # either way this request cost no simulation.
            with self._lock:
                self._cache_hits += 1
        return payload, not engine_ran

    def stats(self) -> dict[str, Any]:
        """A consistent snapshot of the engine-side counters."""
        with self._lock:
            requests = self._requests
            cache_hits = self._cache_hits
            engine_calls = self._engine_calls
            started = self._started
        hit_rate = cache_hits / requests if requests else 0.0
        return {
            "requests": requests,
            "cache_hits": cache_hits,
            "engine_calls": engine_calls,
            "coalesced": self.batcher.coalesced,
            "cache_hit_rate": round(hit_rate, 4),
            "cache_entries": self.cache.entry_count(),
            "cache_bytes": self.cache.size_bytes(),
            "uptime_s": round(time.time() - started, 3),
        }
