"""Environment-driven service configuration.

The service is deployed the way the exemplar pipeline services are
(SNIPPETS.md §1): one process, configured entirely through environment
variables, with CLI flags as explicit overrides.  Everything the
``repro serve`` entry point needs lives in one frozen
:class:`ServiceConfig` value so the HTTP layer, the engine facade, and
the job manager are constructed from a single source of truth.

Recognised variables::

    REPRO_SERVICE_HOST              bind address        (default 127.0.0.1)
    REPRO_SERVICE_PORT              bind port           (default 8080)
    REPRO_SERVICE_SPOOL             job spool root      (default ~/.cache/repro-service-jobs)
    REPRO_SERVICE_WORKERS           subprocess workers per sweep job
                                    (default 0: jobs drain in-service threads)
    REPRO_SERVICE_THREADS           dense-engine thread layout for requests
                                    that do not pin their own: ``auto``,
                                    ``serial``, or a worker count
                                    (default: the engine's auto policy)
    REPRO_SERVICE_BATCH_WINDOW_MS   micro-batch coalescing window
    REPRO_SERVICE_LEASE_TTL_S       job queue lease duration
    REPRO_SERVICE_MAX_ATTEMPTS      executions per point before quarantine
    REPRO_CACHE_DIR                 response/result cache volume
                                    (read by repro.sweeps.cache, not here)

The cache directory is deliberately *not* a service-specific variable:
``REPRO_CACHE_DIR`` is honoured by
:func:`repro.sweeps.cache.default_cache_dir`, so the CLI, spawned
``repro worker`` processes, and the service all resolve the same mounted
volume.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from pathlib import Path

__all__ = ["MAX_JOB_WORKERS", "ServiceConfig"]

MAX_JOB_WORKERS = 16
"""Upper bound on subprocess workers a single job may request."""


@dataclass(frozen=True)
class ServiceConfig:
    """Resolved configuration of one ``repro serve`` process."""

    host: str = "127.0.0.1"
    port: int = 8080
    cache_dir: str | None = None
    cache_max_mb: float | None = None
    spool_root: str | None = None
    job_workers: int = 0
    batch_window_s: float = 0.002
    lease_ttl_s: float = 60.0
    max_attempts: int = 3
    engine_threads: int | str | None = None

    def __post_init__(self) -> None:
        if self.engine_threads is not None:
            # Same grammar as ProtocolSpec.threads / run_ensemble.
            valid = (
                self.engine_threads in ("auto", "serial")
                or (
                    isinstance(self.engine_threads, int)
                    and not isinstance(self.engine_threads, bool)
                    and self.engine_threads >= 0
                )
            )
            if not valid:
                raise ValueError(
                    "engine_threads must be 'auto', 'serial', or an int "
                    f">= 0, got {self.engine_threads!r}"
                )
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if not 0 <= self.job_workers <= MAX_JOB_WORKERS:
            raise ValueError(
                f"job_workers must be in [0, {MAX_JOB_WORKERS}], "
                f"got {self.job_workers}"
            )
        if self.batch_window_s < 0:
            raise ValueError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}"
            )
        if self.lease_ttl_s <= 0:
            raise ValueError(
                f"lease_ttl_s must be > 0, got {self.lease_ttl_s}"
            )
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    @classmethod
    def from_env(cls, **overrides) -> "ServiceConfig":
        """Environment values, with keyword *overrides* (``None`` ignored).

        The override convention matches argparse defaults: a CLI flag the
        user did not pass arrives as ``None`` and leaves the env/default
        value in place.
        """
        env = os.environ
        values: dict = {}
        if env.get("REPRO_SERVICE_HOST"):
            values["host"] = env["REPRO_SERVICE_HOST"]
        if env.get("REPRO_SERVICE_PORT"):
            values["port"] = int(env["REPRO_SERVICE_PORT"])
        if env.get("REPRO_SERVICE_SPOOL"):
            values["spool_root"] = env["REPRO_SERVICE_SPOOL"]
        if env.get("REPRO_SERVICE_WORKERS"):
            values["job_workers"] = int(env["REPRO_SERVICE_WORKERS"])
        if env.get("REPRO_SERVICE_BATCH_WINDOW_MS"):
            values["batch_window_s"] = (
                float(env["REPRO_SERVICE_BATCH_WINDOW_MS"]) / 1000.0
            )
        if env.get("REPRO_SERVICE_LEASE_TTL_S"):
            values["lease_ttl_s"] = float(env["REPRO_SERVICE_LEASE_TTL_S"])
        if env.get("REPRO_SERVICE_MAX_ATTEMPTS"):
            values["max_attempts"] = int(env["REPRO_SERVICE_MAX_ATTEMPTS"])
        if env.get("REPRO_SERVICE_THREADS"):
            raw = env["REPRO_SERVICE_THREADS"]
            values["engine_threads"] = (
                raw if raw in ("auto", "serial") else int(raw)
            )
        known = {f.name for f in fields(cls)}
        for key, value in overrides.items():
            if key not in known:
                raise TypeError(f"unknown ServiceConfig field {key!r}")
            if value is not None:
                values[key] = value
        return cls(**values)

    def resolved_spool_root(self) -> Path:
        """Where job spools live (never inside the cache root: the cache
        GC globs ``*.json`` under its shard directories and must not see
        job metadata)."""
        if self.spool_root is not None:
            return Path(self.spool_root)
        return Path.home() / ".cache" / "repro-service-jobs"
