"""The HTTP surface: stdlib-only routing over the service core.

No web framework is assumed (the container ships no FastAPI/Flask):
the app is a plain :class:`ServiceApp` whose :meth:`~ServiceApp.dispatch`
maps ``(method, target, body)`` to a :class:`Response`, and a thin
:class:`~http.server.BaseHTTPRequestHandler` adapter feeds it from a
:class:`~http.server.ThreadingHTTPServer`.  Keeping dispatch free of
socket types is what makes the routing layer unit-testable without
binding a port — the HTTP tests drive ``dispatch`` directly and only a
couple of smoke tests start a real server.

Endpoints (all JSON unless noted)::

    GET  /v1/health             liveness + version
    GET  /v1/stats              cache hit rate, engine calls, coalesced
                                bursts, queue depth, worker liveness
    POST /v1/ensemble           run (or serve from cache) one ensemble
    POST /v1/compare            protocols side by side, one table
    POST /v1/sweeps             submit a grid as an async job (202)
    GET  /v1/jobs               every job's status
    GET  /v1/jobs/{id}          poll one job
    GET  /v1/jobs/{id}/rows     summary rows landed so far (NDJSON);
                                ``?stream=1`` holds the connection and
                                streams each row as it completes
    GET  /v1/jobs/{id}/table    the summary table (text/plain) —
                                byte-identical to ``repro sweep`` output
    GET  /v1/jobs/{id}/results  full payloads of the done points

Error contract: a body that cannot be parsed into a valid spec is a 400
with ``{"error": ...}`` carrying the validation message verbatim; an
unknown route or job id is a 404; anything unexpected is a 500 whose
body names the exception type but not a traceback.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Iterator
from urllib.parse import parse_qs, urlsplit

import repro._version
from repro.analysis.tables import (
    SWEEP_SUMMARY_COLUMNS,
    format_table,
    sweep_summary_rows,
)
from repro.io.results import payload_to_dict
from repro.service.config import ServiceConfig
from repro.service.engine import ServiceEngine
from repro.service.jobs import JobManager, json_safe_cell
from repro.service.requests import (
    RequestError,
    parse_compare_request,
    parse_point_request,
    parse_sweep_request,
)
from repro.sweeps.cache import SweepCache
from repro.sweeps.queue import queue_key

__all__ = ["Response", "ServiceApp", "make_server", "serve"]


class Response:
    """One dispatch result: status + JSON body, text, or an NDJSON stream."""

    def __init__(
        self,
        status: int,
        body: Any = None,
        *,
        text: str | None = None,
        stream: Iterator[dict] | None = None,
    ) -> None:
        self.status = status
        self.body = body
        self.text = text
        self.stream = stream
        if stream is not None:
            self.content_type = "application/x-ndjson"
        elif text is not None:
            self.content_type = "text/plain; charset=utf-8"
        else:
            self.content_type = "application/json"

    def json(self) -> Any:
        """The decoded body (tests' convenience accessor)."""
        return self.body

    def encode(self) -> bytes | None:
        """The response bytes, or ``None`` for a stream (write per-row)."""
        if self.stream is not None:
            return None
        if self.text is not None:
            return self.text.encode("utf-8")
        return (json.dumps(self.body, indent=1) + "\n").encode("utf-8")


def _error(status: int, message: str) -> Response:
    return Response(status, {"error": message})


class ServiceApp:
    """Routing + handlers over one engine and one job manager."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        cache = SweepCache(
            self.config.cache_dir, max_mb=self.config.cache_max_mb
        )
        self.engine = ServiceEngine(
            cache, batch_window_s=self.config.batch_window_s
        )
        self.jobs = JobManager(
            self.config.resolved_spool_root(),
            cache,
            workers=self.config.job_workers,
            lease_ttl_s=self.config.lease_ttl_s,
            max_attempts=self.config.max_attempts,
        )
        # (method, compiled path regex) -> handler(match, query, body)
        self._routes: list[tuple[str, re.Pattern, Callable]] = [
            ("GET", re.compile(r"^/v1/health$"), self._health),
            ("GET", re.compile(r"^/v1/stats$"), self._stats),
            ("POST", re.compile(r"^/v1/ensemble$"), self._ensemble),
            ("POST", re.compile(r"^/v1/compare$"), self._compare),
            ("POST", re.compile(r"^/v1/sweeps$"), self._submit_sweep),
            ("GET", re.compile(r"^/v1/jobs$"), self._list_jobs),
            ("GET", re.compile(r"^/v1/jobs/(?P<job>[\w-]+)$"), self._job_status),
            (
                "GET",
                re.compile(r"^/v1/jobs/(?P<job>[\w-]+)/rows$"),
                self._job_rows,
            ),
            (
                "GET",
                re.compile(r"^/v1/jobs/(?P<job>[\w-]+)/table$"),
                self._job_table,
            ),
            (
                "GET",
                re.compile(r"^/v1/jobs/(?P<job>[\w-]+)/results$"),
                self._job_results,
            ),
        ]

    # -- dispatch ------------------------------------------------------

    def dispatch(self, method: str, target: str, body: bytes | None = None) -> Response:
        """Route one request.  Socket-free: the unit-test entry point."""
        split = urlsplit(target)
        path = split.path
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        matched_path = False
        for route_method, pattern, handler in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            matched_path = True
            if route_method != method:
                continue
            try:
                payload = self._decode_body(body) if method == "POST" else None
            except RequestError as exc:
                return _error(400, str(exc))
            try:
                return handler(match, query, payload)
            except RequestError as exc:
                return _error(400, str(exc))
            except Exception as exc:  # noqa: BLE001 - the 500 boundary
                return _error(500, f"{type(exc).__name__}: {exc}")
        if matched_path:
            return _error(405, f"method {method} not allowed for {path}")
        return _error(404, f"no route for {path}")

    @staticmethod
    def _decode_body(body: bytes | None) -> Any:
        if not body:
            raise RequestError("request needs a JSON body")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise RequestError("request body is not valid JSON") from None

    # -- handlers ------------------------------------------------------

    def _with_engine_threads(self, point):
        """Apply the service's dense-thread default to an unpinned point.

        A request whose protocol pins ``threads`` wins; otherwise the
        config's ``engine_threads`` (``REPRO_SERVICE_THREADS``) is
        stamped into the point *before* caching/queueing, because the
        thread layout is part of the result bytes — two layouts must not
        share a cache entry.
        """
        default = self.config.engine_threads
        if default is None or point.protocol.threads is not None:
            return point
        import dataclasses

        return dataclasses.replace(
            point,
            protocol=dataclasses.replace(point.protocol, threads=default),
        )

    def _health(self, match, query, body) -> Response:
        return Response(
            200,
            {"status": "ok", "version": repro._version.__version__},
        )

    def _stats(self, match, query, body) -> Response:
        stats = self.engine.stats()
        stats["queue_depth"] = self.jobs.queue_depth()
        stats["workers"] = self.jobs.worker_liveness()
        stats["version"] = repro._version.__version__
        return Response(200, stats)

    def _ensemble(self, match, query, body) -> Response:
        point = self._with_engine_threads(parse_point_request(body))
        payload, cached = self.engine.execute(point)
        (row,) = sweep_summary_rows([(point, payload)])
        return Response(
            200,
            {
                "point": point.label or queue_key(point)[:12],
                "cached": cached,
                "row": {k: json_safe_cell(v) for k, v in row.items()},
                "result": payload_to_dict(payload),
            },
        )

    def _compare(self, match, query, body) -> Response:
        points = [
            self._with_engine_threads(p) for p in parse_compare_request(body)
        ]
        pairs = []
        cached_flags = []
        for point in points:
            payload, cached = self.engine.execute(point)
            pairs.append((point, payload))
            cached_flags.append(cached)
        rows = sweep_summary_rows(pairs)
        return Response(
            200,
            {
                "cached": cached_flags,
                "rows": [
                    {k: json_safe_cell(v) for k, v in row.items()} for row in rows
                ],
                "table": format_table(SWEEP_SUMMARY_COLUMNS, rows),
                "results": {
                    (p.label or queue_key(p)[:12]): payload_to_dict(payload)
                    for p, payload in pairs
                },
            },
        )

    def _submit_sweep(self, match, query, body) -> Response:
        spec = parse_sweep_request(body)
        if self.config.engine_threads is not None:
            import dataclasses

            spec = dataclasses.replace(
                spec,
                points=tuple(
                    self._with_engine_threads(p) for p in spec.points
                ),
            )
        job_id, created = self.jobs.submit(spec)
        status = self.jobs.status(job_id)
        return Response(
            202 if created else 200,
            {"job_id": job_id, "created": created, "status": status},
        )

    def _list_jobs(self, match, query, body) -> Response:
        return Response(200, {"jobs": self.jobs.list_jobs()})

    def _job_status(self, match, query, body) -> Response:
        status = self.jobs.status(match.group("job"))
        if status is None:
            return _error(404, f"unknown job {match.group('job')!r}")
        return Response(200, status)

    def _job_rows(self, match, query, body) -> Response:
        job_id = match.group("job")
        if self.jobs.status(job_id) is None:
            return _error(404, f"unknown job {job_id!r}")
        if query.get("stream") in ("1", "true", "yes"):
            timeout = float(query["timeout_s"]) if "timeout_s" in query else None
            return Response(
                200, stream=self.jobs.iter_rows(job_id, timeout_s=timeout)
            )
        rows = self.jobs.rows(job_id)
        return Response(200, stream=iter(rows or []))

    def _job_table(self, match, query, body) -> Response:
        table = self.jobs.table(match.group("job"))
        if table is None:
            return _error(404, f"unknown job {match.group('job')!r}")
        return Response(200, text=table + "\n")

    def _job_results(self, match, query, body) -> Response:
        results = self.jobs.results(match.group("job"))
        if results is None:
            return _error(404, f"unknown job {match.group('job')!r}")
        return Response(200, {"results": results})


class _Handler(BaseHTTPRequestHandler):
    """Socket adapter: reads the body, defers to ``app.dispatch``.

    HTTP/1.0 with ``Connection: close`` keeps the contract simple: one
    request per connection, and an NDJSON stream ends when the socket
    closes.  ``log_message`` is silenced — the service is often run
    under pytest and CI where default stderr chatter is noise.
    """

    app: ServiceApp  # bound by make_server via a subclass attribute
    protocol_version = "HTTP/1.0"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _respond(self, response: Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        body = response.encode()
        if body is not None:
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self.end_headers()
        try:
            for row in response.stream:
                self.wfile.write((json.dumps(row) + "\n").encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up mid-stream; nothing to clean up

    def _handle(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else None
        try:
            response = self.app.dispatch(method, self.path, body)
        except Exception as exc:  # pragma: no cover - dispatch catches
            response = _error(500, f"{type(exc).__name__}: {exc}")
        self._respond(response)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._handle("POST")


def make_server(
    app: ServiceApp, *, host: str | None = None, port: int | None = None
) -> ThreadingHTTPServer:
    """A bound (not yet serving) threaded server for *app*.

    ``port=0`` asks the OS for an ephemeral port — the tests' pattern —
    readable back from ``server.server_address``.
    """
    handler = type("BoundHandler", (_Handler,), {"app": app})
    bind_host = host if host is not None else app.config.host
    bind_port = port if port is not None else app.config.port
    return ThreadingHTTPServer((bind_host, bind_port), handler)


def serve(config: ServiceConfig | None = None) -> None:
    """Blocking entry point behind ``repro serve``."""
    app = ServiceApp(config)
    server = make_server(app)
    host, port = server.server_address[:2]
    print(f"repro service listening on http://{host}:{port}")
    print(f"  cache: {app.engine.cache.root}")
    print(f"  jobs:  {app.jobs.spool_root} (workers={app.config.job_workers})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
