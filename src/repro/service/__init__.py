"""Consensus-as-a-service: an HTTP API + async job queue over the engine.

The service layer (DESIGN.md §2.8) exposes the library's existing
execution stack — canonical :class:`~repro.sweeps.spec.Point` specs,
the content-addressed :class:`~repro.sweeps.cache.SweepCache`, and the
durable :class:`~repro.sweeps.queue.WorkQueue` — over plain HTTP, with
no framework dependency (stdlib :mod:`http.server` only).  Composition:

* :mod:`repro.service.config` — env-driven :class:`ServiceConfig`;
* :mod:`repro.service.requests` — JSON body → canonical spec
  validation (the cache-coherence boundary);
* :mod:`repro.service.batcher` — :class:`MicroBatcher`, single-flight
  coalescing of concurrent identical requests;
* :mod:`repro.service.engine` — :class:`ServiceEngine`, the
  cache → batcher → engine synchronous facade;
* :mod:`repro.service.jobs` — :class:`JobManager`, async sweep grids
  over the durable spool with worker fleets and re-attach;
* :mod:`repro.service.app` — :class:`ServiceApp` routing, the
  socket-free :meth:`~ServiceApp.dispatch` test surface, and the
  ``repro serve`` entry point.

Quickstart::

    from repro.service import ServiceApp, ServiceConfig, make_server

    app = ServiceApp(ServiceConfig(cache_dir="/tmp/cache", port=0))
    server = make_server(app)          # port 0: ephemeral
    # server.serve_forever(), or drive app.dispatch(...) directly
"""

from repro.service.app import Response, ServiceApp, make_server, serve
from repro.service.batcher import MicroBatcher
from repro.service.config import MAX_JOB_WORKERS, ServiceConfig
from repro.service.engine import ServiceEngine
from repro.service.jobs import JobManager, job_id_for
from repro.service.requests import (
    RequestError,
    parse_compare_request,
    parse_host,
    parse_init,
    parse_point_request,
    parse_protocol,
    parse_sweep_request,
)

__all__ = [
    "MAX_JOB_WORKERS",
    "MicroBatcher",
    "JobManager",
    "RequestError",
    "Response",
    "ServiceApp",
    "ServiceConfig",
    "ServiceEngine",
    "job_id_for",
    "make_server",
    "parse_compare_request",
    "parse_host",
    "parse_init",
    "parse_point_request",
    "parse_protocol",
    "parse_sweep_request",
    "serve",
]
