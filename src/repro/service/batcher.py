"""Micro-batching: coalesce concurrent identical requests into one run.

The service's hot pattern is a burst of small identical ensemble
requests — dashboards polling the same query, a notebook cell re-run by
several users.  Executing each independently would multiply engine work
by the burst width for zero information gain (identical canonical
points are bit-identical by the determinism contract).  The
:class:`MicroBatcher` turns such a burst into exactly one engine call:

* requests are keyed by canonical point content
  (:func:`~repro.sweeps.queue.queue_key` — the cache key's content
  hash), so "identical" means *semantically* identical after request
  canonicalisation, not textually identical JSON;
* the first arrival for a key becomes the **leader**: it opens a
  flight, optionally sleeps a short coalescing window so concurrent
  followers can attach, computes, publishes the result on the flight,
  and closes it;
* later arrivals for the same key become **followers**: they block on
  the flight's event and return the leader's published result without
  touching the engine.

Why identical-point-only coalescing
-----------------------------------
A more aggressive batcher would merge *different* seeds of the same
(host, protocol) shape into one widened engine call.  That would break
the library's bit-identity contract: the engine draws one dynamics
stream across the whole replica matrix, so replicas' randomness depends
on which other replicas share the call.  Coalescing only content-
identical points keeps every response bit-identical to an unbatched
run — results are indistinguishable from ``execute_point``, which the
equivalence tests assert — while still collapsing the bursts that occur
in practice (identical queries, which are also the only merges the
cache could have served anyway).

The flight table holds no completed entries: results are published to
waiting followers and then the flight is dropped, because the
:class:`~repro.sweeps.cache.SweepCache` is the durable result store.  A
follower that loses the race (attaches after the flight closed) falls
through to the engine facade, whose compute path re-probes the cache
first — so it still gets the leader's cached result, not a recompute.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.sweeps.queue import queue_key
from repro.sweeps.spec import Point

__all__ = ["MicroBatcher"]


class _Flight:
    """One in-progress computation; followers wait on :attr:`done`."""

    __slots__ = ("done", "result", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.followers = 0


class MicroBatcher:
    """Single-flight execution of canonical points with a join window.

    *window_s* is how long a leader lingers before computing, giving a
    concurrent burst time to attach as followers.  ``0`` disables the
    wait (pure single-flight: only requests that arrive while the
    computation is actually running coalesce) — the right setting for
    tests and for deployments where added latency matters more than
    burst absorption.
    """

    def __init__(self, window_s: float = 0.0) -> None:
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        self.window_s = window_s
        self._lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}
        self._coalesced = 0

    @property
    def coalesced(self) -> int:
        """Requests served by another request's flight since startup."""
        with self._lock:
            return self._coalesced

    def run(self, point: Point, compute: Callable[[Point], Any]) -> Any:
        """Execute *compute(point)* at most once per concurrent burst.

        The leader's exception (if any) propagates to every follower of
        the same flight: they asked the same question, they get the same
        answer, including a failure.
        """
        key = queue_key(point)
        with self._lock:
            flight = self._flights.get(key)
            is_leader = flight is None
            if is_leader:
                flight = _Flight()
                self._flights[key] = flight
            else:
                flight.followers += 1
                self._coalesced += 1
        if not is_leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.result
        try:
            if self.window_s:
                time.sleep(self.window_s)
            flight.result = compute(point)
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            # Close the flight *before* waking followers so a request
            # that arrives now starts a fresh flight (its compute path
            # re-probes the cache, so no duplicate engine work).
            with self._lock:
                del self._flights[key]
            flight.done.set()
        return flight.result
