"""Single-source package version."""

__version__ = "1.1.0"
