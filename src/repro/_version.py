"""Single-source package version."""

__version__ = "1.8.0"
