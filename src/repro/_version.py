"""Single-source package version."""

__version__ = "1.7.0"
