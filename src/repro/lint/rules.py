"""The repo-specific rule catalogue (DESIGN.md §2.9).

Six rule families, each enforcing an invariant the library's
guarantees rest on:

``rng`` (RNG001)
    Random-stream *construction* is confined to :mod:`repro.util.rng`.
    Everything else threads :func:`~repro.util.rng.as_generator` /
    :func:`~repro.util.rng.spawn_generators` streams; a stray
    ``np.random.default_rng()`` in a harness silently decouples a
    result from its seed tuple.

``determinism`` (DET001–DET003)
    No wall clocks, OS entropy, or unsorted-set iteration inside
    ``core/`` or the cache-key/canonicalisation paths
    (``sweeps/spec.py``, ``sweeps/cache.py``, ``service/requests.py``),
    and every ``json.dumps`` there must pass ``sort_keys=True`` —
    content addresses are only content addresses if the bytes are a
    pure function of the content.

``lock-discipline`` (LCK001)
    A lightweight race detector: an attribute written under
    ``with self._lock`` in one method is part of the lock's protected
    state; touching it anywhere else without the lock is a report.
    Applies to every class that constructs a ``threading.Lock`` and to
    module-level locks guarding module globals.

``sqlite-thread`` (SQL001–SQL003)
    SQLite handles are thread-affine.  A class that opens a
    ``sqlite3.connect`` handle must route all SQL through its
    ``_execute`` method (which carries the runtime
    ``threading.get_ident`` owner assert), and nothing outside the
    owning class may touch the handle at all.

``registry`` (REG001–REG003)
    Declared protocol kinds must be complete: every entry of
    ``PROTOCOL_KINDS`` needs a ``ProtocolSpec.build`` branch, an
    ``_PROTOCOL_COST_FACTORS`` entry, and must resolve to protocol
    classes with a concrete ``step_batch`` and ``summarize`` — a kind
    you can declare but not execute (or not schedule) is a runtime
    crash waiting in a worker.

``backend`` (BKND001)
    The dense hot path (``core/dense.py``) is backend-pure: every array
    op goes through the :class:`~repro.core.backend.ArrayBackend`
    contract, so direct numpy imports or ``np.*`` attribute use there
    is a report — ``core/backend.py`` is the one module allowed to
    bind numpy (DESIGN.md §2.10).

Rules are pure functions of parsed ASTs — nothing here imports the
modules it audits, so the linter can also judge code too broken to
import.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Any, Iterator, Sequence

from repro.lint.engine import Finding, SourceFile

__all__ = [
    "ALL_RULES",
    "Rule",
    "BackendPurityRule",
    "DeterminismRule",
    "LockDisciplineRule",
    "RegistryCompletenessRule",
    "RngDisciplineRule",
    "SqliteThreadRule",
    "rule_catalog",
]


class Rule:
    """One rule family: per-file and/or whole-project checks."""

    rule_ids: tuple[str, ...] = ()
    family: str = ""
    description: str = ""

    def check_file(self, src: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        return iter(())


# -- shared AST helpers ------------------------------------------------


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Local name → fully dotted origin, from this module's imports."""
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


def _resolve(dotted: str, imports: dict[str, str]) -> str:
    """Expand the first segment of *dotted* through the import map."""
    head, _, rest = dotted.partition(".")
    origin = imports.get(head)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin


def _last2(dotted: str) -> str:
    return ".".join(dotted.split(".")[-2:])


def _is_self_attr(node: ast.AST, attr: str | None = None) -> str | None:
    """The attribute name if *node* is ``self.<attr>``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        if attr is None or node.attr == attr:
            return node.attr
    return None


# -- RNG001: RNG construction discipline -------------------------------

_RNG_CONSTRUCTORS = frozenset(
    {
        "Generator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
        "RandomState",
        "default_rng",
        "seed",
    }
)

_RNG_ALLOWED_SUFFIXES = ("util/rng.py",)


class RngDisciplineRule(Rule):
    rule_ids = ("RNG001",)
    family = "rng"
    description = (
        "numpy random-stream construction (Generator/PCG64/default_rng/"
        "seed/...) must live in util/rng.py; everything else goes "
        "through as_generator/spawn_generators"
    )

    def check_file(self, src: SourceFile) -> Iterator[Finding]:
        if src.rel.endswith(_RNG_ALLOWED_SUFFIXES):
            return
        imports = _import_map(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            name = dotted.rsplit(".", 1)[-1]
            if name not in _RNG_CONSTRUCTORS:
                continue
            resolved = _resolve(dotted, imports)
            segments = resolved.split(".")
            # numpy.random.<ctor> through any import spelling, plus the
            # raw `<anything>.random.<ctor>` chain as a fallback when the
            # import is not visible to this module's AST.
            from_numpy_random = (
                len(segments) >= 2
                and segments[-2] == "random"
                and (segments[0] in ("numpy", "np") or resolved.startswith("numpy."))
            )
            bare_import = resolved == f"numpy.random.{name}" or (
                "." not in dotted and imports.get(dotted, "").startswith("numpy.random.")
            )
            if from_numpy_random or bare_import:
                yield Finding(
                    path=src.rel,
                    line=node.lineno,
                    rule="RNG001",
                    message=(
                        f"direct RNG construction {dotted}(...) outside "
                        "util/rng.py"
                    ),
                    hint=(
                        "build streams with repro.util.rng.as_generator / "
                        "spawn_generators so every stream stays replayable "
                        "from a seed tuple"
                    ),
                )


# -- DET001–DET003: determinism purity ---------------------------------

_DET_SCOPE_SEGMENTS = ("core",)
_DET_SCOPE_SUFFIXES = (
    "sweeps/spec.py",
    "sweeps/cache.py",
    "service/requests.py",
)

_BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)


def _in_determinism_scope(rel: str) -> bool:
    parts = PurePosixPath(rel).parts
    return any(seg in parts for seg in _DET_SCOPE_SEGMENTS) or rel.endswith(
        _DET_SCOPE_SUFFIXES
    )


class DeterminismRule(Rule):
    rule_ids = ("DET001", "DET002", "DET003")
    family = "determinism"
    description = (
        "no wall clocks / OS entropy / unsorted-set iteration in core/ "
        "or the cache-key paths; json.dumps feeding digests needs "
        "sort_keys=True"
    )

    def check_file(self, src: SourceFile) -> Iterator[Finding]:
        if not _in_determinism_scope(src.rel):
            return
        imports = _import_map(src.tree)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                resolved = _resolve(dotted, imports) if dotted else None
                if resolved is not None:
                    if _last2(resolved) in _BANNED_CALLS or resolved in _BANNED_CALLS:
                        yield Finding(
                            path=src.rel,
                            line=node.lineno,
                            rule="DET001",
                            message=(
                                f"nondeterministic call {dotted}() in a "
                                "determinism-critical path"
                            ),
                            hint=(
                                "clocks and OS entropy must stay out of core/ "
                                "and the canonicalisation paths; thread values "
                                "in from the caller instead"
                            ),
                        )
                    elif resolved.startswith("secrets."):
                        yield Finding(
                            path=src.rel,
                            line=node.lineno,
                            rule="DET001",
                            message=(
                                f"OS-entropy call {dotted}() in a "
                                "determinism-critical path"
                            ),
                            hint="derive randomness from a seeded stream instead",
                        )
                    if _last2(resolved) == "json.dumps":
                        yield from self._check_dumps(src, node)
            for iter_node in self._iteration_targets(node):
                if isinstance(iter_node, ast.Set) or (
                    isinstance(iter_node, ast.Call)
                    and isinstance(iter_node.func, ast.Name)
                    and iter_node.func.id in ("set", "frozenset")
                ):
                    yield Finding(
                        path=src.rel,
                        line=iter_node.lineno,
                        rule="DET002",
                        message="iteration over an unsorted set",
                        hint=(
                            "set iteration order is hash-salted; wrap the "
                            "set in sorted(...) before iterating"
                        ),
                    )

    @staticmethod
    def _iteration_targets(node: ast.AST) -> Iterator[ast.expr]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter

    @staticmethod
    def _check_dumps(src: SourceFile, node: ast.Call) -> Iterator[Finding]:
        has_splat = any(kw.arg is None for kw in node.keywords)
        sort_keys = next(
            (kw for kw in node.keywords if kw.arg == "sort_keys"), None
        )
        ok = sort_keys is not None and (
            isinstance(sort_keys.value, ast.Constant)
            and sort_keys.value.value is True
        )
        if not ok and not has_splat:
            yield Finding(
                path=src.rel,
                line=node.lineno,
                rule="DET003",
                message=(
                    "json.dumps without sort_keys=True in a "
                    "determinism-critical path"
                ),
                hint=(
                    "canonical/digested JSON must serialise with "
                    "sort_keys=True or the same content can hash two ways"
                ),
            )


# -- LCK001: lock discipline -------------------------------------------


@dataclass
class _Access:
    attr: str
    line: int
    write: bool
    locked: bool
    func: str


class _LockWalker(ast.NodeVisitor):
    """Record guarded-candidate accesses in one function body."""

    def __init__(self, names: frozenset[str], lock_exprs: frozenset[str], func: str):
        self.names = names          # attribute / global names to track
        self.lock_exprs = lock_exprs  # "self._lock" style dotted forms
        self.func = func
        self.depth = 0
        self.accesses: list[_Access] = []
        self.globals_declared: set[str] = set()

    # lock scopes ----------------------------------------------------

    def _is_lock(self, expr: ast.expr) -> bool:
        dotted = _dotted(expr)
        return dotted is not None and dotted in self.lock_exprs

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        holds = any(self._is_lock(item.context_expr) for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
        if holds:
            self.depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if holds:
            self.depth -= 1

    # access recording -----------------------------------------------

    def _record(self, attr: str, line: int, write: bool) -> None:
        self.accesses.append(
            _Access(attr, line, write, self.depth > 0, self.func)
        )

    def _record_target(self, target: ast.expr) -> None:
        attr = _is_self_attr(target)
        if attr is not None and attr in self.names:
            self._record(attr, target.lineno, write=True)
            return
        if isinstance(target, ast.Subscript):
            inner = _is_self_attr(target.value)
            if inner is not None and inner in self.names:
                self._record(inner, target.lineno, write=True)
            else:
                self.visit(target.value)
            self.visit(target.slice)
            return
        if isinstance(target, ast.Name):
            if target.id in self.names and target.id in self.globals_declared:
                self._record(target.id, target.lineno, write=True)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(elt)
            return
        self.visit(target)

    def visit_Global(self, node: ast.Global) -> None:
        self.globals_declared.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_target(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_target(target)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _is_self_attr(node)
        if attr is not None and attr in self.names:
            self._record(attr, node.lineno, write=False)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if (
            isinstance(node.ctx, ast.Load)
            and node.id in self.names
            and "self" not in self.lock_exprs_prefixes()
        ):
            self._record(node.id, node.lineno, write=False)

    def lock_exprs_prefixes(self) -> set[str]:
        return {e.split(".")[0] for e in self.lock_exprs}


def _lock_call(node: ast.expr, imports: dict[str, str]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted(node.func)
    if dotted is None:
        return False
    resolved = _resolve(dotted, imports)
    return _last2(resolved) in ("threading.Lock", "threading.RLock")


class LockDisciplineRule(Rule):
    rule_ids = ("LCK001",)
    family = "lock-discipline"
    description = (
        "state written under `with <lock>` in one method must not be "
        "touched elsewhere without the lock (classes with a "
        "threading.Lock attribute, plus module-level locks)"
    )

    def check_file(self, src: SourceFile) -> Iterator[Finding]:
        imports = _import_map(src.tree)
        for node in src.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(src, node, imports)
        yield from self._check_module_level(src, imports)

    # class-attribute variant ----------------------------------------

    def _check_class(
        self, src: SourceFile, cls: ast.ClassDef, imports: dict[str, str]
    ) -> Iterator[Finding]:
        methods = [
            n
            for n in cls.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs: set[str] = set()
        for method in methods:
            for sub in ast.walk(method):
                if isinstance(sub, ast.Assign) and _lock_call(sub.value, imports):
                    for target in sub.targets:
                        attr = _is_self_attr(target)
                        if attr is not None:
                            lock_attrs.add(attr)
        if not lock_attrs:
            return
        lock_exprs = frozenset(f"self.{name}" for name in lock_attrs)
        # Track every self.<attr>; which ones are guarded is inferred
        # from the write pattern below.
        attr_names: set[str] = set()
        for method in methods:
            for sub in ast.walk(method):
                attr = _is_self_attr(sub) if isinstance(sub, ast.Attribute) else None
                if attr is not None:
                    attr_names.add(attr)
        attr_names -= lock_attrs
        accesses: list[_Access] = []
        for method in methods:
            walker = _LockWalker(frozenset(attr_names), lock_exprs, method.name)
            for stmt in method.body:
                walker.visit(stmt)
            accesses.extend(walker.accesses)
        lock_name = sorted(lock_attrs)[0]
        yield from self._judge(
            src,
            accesses,
            exempt=("__init__",),
            describe=lambda attr: f"self.{attr}",
            lock_label=f"self.{lock_name}",
            owner=cls.name,
        )

    # module-global variant ------------------------------------------

    def _check_module_level(
        self, src: SourceFile, imports: dict[str, str]
    ) -> Iterator[Finding]:
        module_locks: set[str] = set()
        module_globals: set[str] = set()
        for node in src.tree.body:
            if isinstance(node, ast.Assign):
                names = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if _lock_call(node.value, imports):
                    module_locks.update(names)
                else:
                    module_globals.update(names)
        if not module_locks:
            return
        module_globals -= module_locks
        lock_exprs = frozenset(module_locks)
        functions = [
            n
            for n in src.tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        accesses: list[_Access] = []
        for fn in functions:
            walker = _LockWalker(frozenset(module_globals), lock_exprs, fn.name)
            for stmt in fn.body:
                walker.visit(stmt)
            accesses.extend(walker.accesses)
        lock_name = sorted(module_locks)[0]
        yield from self._judge(
            src,
            accesses,
            exempt=(),
            describe=lambda attr: attr,
            lock_label=lock_name,
            owner=src.rel,
        )

    @staticmethod
    def _judge(
        src: SourceFile,
        accesses: list[_Access],
        *,
        exempt: tuple[str, ...],
        describe: Any,
        lock_label: str,
        owner: str,
    ) -> Iterator[Finding]:
        guarded: dict[str, str] = {}
        for acc in accesses:
            if acc.write and acc.locked and acc.func not in exempt:
                guarded.setdefault(acc.attr, acc.func)
        for acc in accesses:
            if acc.attr not in guarded or acc.locked or acc.func in exempt:
                continue
            witness = guarded[acc.attr]
            kind = "written" if acc.write else "read"
            yield Finding(
                path=src.rel,
                line=acc.line,
                rule="LCK001",
                message=(
                    f"{describe(acc.attr)} {kind} without {lock_label} in "
                    f"{acc.func}() but written under the lock in "
                    f"{witness}() ({owner})"
                ),
                hint=(
                    f"take `with {lock_label}:` around this access, or "
                    "move the state out of the lock's protected set"
                ),
            )


# -- SQL001–SQL003: SQLite thread affinity -----------------------------

_CONN_ALLOWED_METHODS = frozenset({"__init__", "close", "_execute"})
_DEFAULT_CONN_NAMES = frozenset({"_conn"})


def _class_conn_attrs(cls: ast.ClassDef, imports: dict[str, str]) -> set[str]:
    """Attributes of *cls* assigned from ``sqlite3.connect(...)``."""
    out: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        dotted = _dotted(node.value.func)
        if dotted is None:
            continue
        if _last2(_resolve(dotted, imports)) != "sqlite3.connect":
            continue
        for target in node.targets:
            attr = _is_self_attr(target)
            if attr is not None:
                out.add(attr)
    return out


class SqliteThreadRule(Rule):
    rule_ids = ("SQL001", "SQL002", "SQL003")
    family = "sqlite-thread"
    description = (
        "a sqlite3 handle may only be touched by its owning class, "
        "routed through _execute() (which must assert the owning "
        "thread via threading.get_ident)"
    )

    def check_file(self, src: SourceFile) -> Iterator[Finding]:
        imports = _import_map(src.tree)
        conn_names: set[str] = set(_DEFAULT_CONN_NAMES)
        owners: list[tuple[ast.ClassDef, set[str]]] = []
        for node in src.tree.body:
            if isinstance(node, ast.ClassDef):
                attrs = _class_conn_attrs(node, imports)
                if attrs:
                    owners.append((node, attrs))
                    conn_names |= attrs
        for cls, attrs in owners:
            yield from self._check_owner(src, cls, attrs, imports)
        yield from self._check_foreign(src, conn_names)

    def _check_owner(
        self,
        src: SourceFile,
        cls: ast.ClassDef,
        conn_attrs: set[str],
        imports: dict[str, str],
    ) -> Iterator[Finding]:
        asserts_owner = False
        for node in ast.walk(cls):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted and _last2(_resolve(dotted, imports)) == (
                    "threading.get_ident"
                ):
                    asserts_owner = True
        if not asserts_owner:
            yield Finding(
                path=src.rel,
                line=cls.lineno,
                rule="SQL003",
                message=(
                    f"{cls.name} owns a sqlite3 handle but never asserts "
                    "its owning thread (no threading.get_ident() check)"
                ),
                hint=(
                    "record threading.get_ident() at construction and "
                    "assert it in _execute() before touching the handle"
                ),
            )
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _CONN_ALLOWED_METHODS:
                continue
            for node in ast.walk(method):
                if not isinstance(node, ast.Attribute):
                    continue
                attr = _is_self_attr(node)
                if attr in conn_attrs:
                    yield Finding(
                        path=src.rel,
                        line=node.lineno,
                        rule="SQL002",
                        message=(
                            f"direct use of self.{attr} in "
                            f"{cls.name}.{method.name}() bypasses "
                            f"{cls.name}._execute()"
                        ),
                        hint=(
                            "route SQL through self._execute(sql, params) "
                            "so the owning-thread assert always runs"
                        ),
                    )

    @staticmethod
    def _check_foreign(src: SourceFile, conn_names: set[str]) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in conn_names:
                continue
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                continue
            receiver = _dotted(node.value) or "<expr>"
            yield Finding(
                path=src.rel,
                line=node.lineno,
                rule="SQL001",
                message=(
                    f"SQLite handle {receiver}.{node.attr} touched from "
                    "outside its owning class"
                ),
                hint=(
                    "SQLite connections are thread-affine; call the "
                    "owner's public methods (or open a fresh handle) "
                    "instead of reaching into the object"
                ),
            )


# -- REG001–REG003: protocol registry completeness ---------------------


@dataclass
class _ClassInfo:
    bases: tuple[str, ...]
    concrete_methods: frozenset[str]


def _is_abstract(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for deco in fn.decorator_list:
        dotted = _dotted(deco)
        if dotted and dotted.rsplit(".", 1)[-1] == "abstractmethod":
            return True
    return False


def _project_classes(files: Sequence[SourceFile]) -> dict[str, _ClassInfo]:
    out: dict[str, _ClassInfo] = {}
    for src in files:
        for node in src.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            bases = tuple(
                d for d in (_dotted(b) for b in node.bases) if d is not None
            )
            concrete = frozenset(
                sub.name
                for sub in node.body
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                and not _is_abstract(sub)
            )
            out[node.name] = _ClassInfo(bases=bases, concrete_methods=concrete)
    return out


def _resolves_method(
    name: str, method: str, classes: dict[str, _ClassInfo]
) -> bool:
    seen: set[str] = set()
    stack = [name]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        info = classes.get(current)
        if info is None:
            continue
        if method in info.concrete_methods:
            return True
        stack.extend(base.rsplit(".", 1)[-1] for base in info.bases)
    return False


def _string_tuple_assign(node: ast.stmt, name: str) -> list[tuple[str, int]] | None:
    if not isinstance(node, ast.Assign):
        return None
    if not any(isinstance(t, ast.Name) and t.id == name for t in node.targets):
        return None
    if not isinstance(node.value, (ast.Tuple, ast.List)):
        return None
    out = []
    for elt in node.value.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            out.append((elt.value, elt.lineno))
    return out


def _dict_string_keys(node: ast.stmt, name: str) -> tuple[set[str], int] | None:
    if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Dict):
        return None
    if not any(isinstance(t, ast.Name) and t.id == name for t in node.targets):
        return None
    keys = {
        k.value
        for k in node.value.keys
        if isinstance(k, ast.Constant) and isinstance(k.value, str)
    }
    return keys, node.lineno


def _kind_literal(test: ast.expr) -> str | None:
    """The string literal of a ``self.kind == "..."`` comparison."""
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    if not isinstance(test.ops[0], ast.Eq):
        return None
    operands = [test.left, test.comparators[0]]
    literal = next(
        (
            o.value
            for o in operands
            if isinstance(o, ast.Constant) and isinstance(o.value, str)
        ),
        None,
    )
    mentions_kind = any(
        (isinstance(o, ast.Attribute) and o.attr == "kind")
        or (isinstance(o, ast.Name) and o.id == "kind")
        for o in operands
    )
    return literal if mentions_kind else None


def _branch_constructors(branch: list[ast.stmt]) -> list[tuple[str, int]]:
    """Constructor class names returned by one build() branch."""
    out: list[tuple[str, int]] = []
    for stmt in branch:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            values: list[ast.expr] = [node.value]
            if isinstance(node.value, ast.Dict):
                values = [v for v in node.value.values if v is not None]
            for value in values:
                if isinstance(value, ast.Call):
                    dotted = _dotted(value.func)
                    if dotted is not None:
                        out.append((dotted.rsplit(".", 1)[-1], value.lineno))
    return out


class RegistryCompletenessRule(Rule):
    rule_ids = ("REG001", "REG002", "REG003")
    family = "registry"
    description = (
        "every PROTOCOL_KINDS entry needs a ProtocolSpec.build() branch, "
        "an _PROTOCOL_COST_FACTORS entry, and must resolve to protocol "
        "classes with concrete step_batch + summarize"
    )

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        classes = _project_classes(files)
        for src in files:
            kinds: list[tuple[str, int]] | None = None
            kinds_line = 0
            cost_keys: tuple[set[str], int] | None = None
            spec_cls: ast.ClassDef | None = None
            for node in src.tree.body:
                found = _string_tuple_assign(node, "PROTOCOL_KINDS")
                if found is not None:
                    kinds = found
                    kinds_line = node.lineno
                dict_found = _dict_string_keys(node, "_PROTOCOL_COST_FACTORS")
                if dict_found is not None:
                    cost_keys = dict_found
                if isinstance(node, ast.ClassDef) and node.name == "ProtocolSpec":
                    spec_cls = node
            if kinds is None:
                continue
            yield from self._check_spec_file(
                src, kinds, kinds_line, cost_keys, spec_cls, classes
            )

    def _check_spec_file(
        self,
        src: SourceFile,
        kinds: list[tuple[str, int]],
        kinds_line: int,
        cost_keys: tuple[set[str], int] | None,
        spec_cls: ast.ClassDef | None,
        classes: dict[str, _ClassInfo],
    ) -> Iterator[Finding]:
        handled: dict[str, list[tuple[str, int]]] = {}
        build_fn = None
        if spec_cls is not None:
            build_fn = next(
                (
                    n
                    for n in spec_cls.body
                    if isinstance(n, ast.FunctionDef) and n.name == "build"
                ),
                None,
            )
        if build_fn is not None:
            for node in ast.walk(build_fn):
                if isinstance(node, ast.If):
                    kind = _kind_literal(node.test)
                    if kind is not None:
                        handled.setdefault(kind, []).extend(
                            _branch_constructors(node.body)
                        )
        for kind, line in kinds:
            if kind not in handled:
                yield Finding(
                    path=src.rel,
                    line=line,
                    rule="REG001",
                    message=(
                        f"protocol kind {kind!r} is declared but has no "
                        "ProtocolSpec.build() branch"
                    ),
                    hint=(
                        "add a build() case returning the Protocol object "
                        "(or mapping) this kind executes as"
                    ),
                )
            if cost_keys is not None and kind not in cost_keys[0]:
                yield Finding(
                    path=src.rel,
                    line=cost_keys[1],
                    rule="REG002",
                    message=(
                        f"protocol kind {kind!r} has no "
                        "_PROTOCOL_COST_FACTORS entry"
                    ),
                    hint=(
                        "declare a cost factor so largest-first scheduling "
                        "and job ETAs stay truthful for this kind"
                    ),
                )
            for ctor, ctor_line in handled.get(kind, []):
                if ctor not in classes:
                    yield Finding(
                        path=src.rel,
                        line=ctor_line,
                        rule="REG003",
                        message=(
                            f"kind {kind!r} builds {ctor}(), which is not a "
                            "class the linter can resolve"
                        ),
                        hint=(
                            "build() must return protocol classes defined "
                            "in the linted tree"
                        ),
                    )
                    continue
                for method in ("step_batch", "summarize"):
                    if not _resolves_method(ctor, method, classes):
                        yield Finding(
                            path=src.rel,
                            line=ctor_line,
                            rule="REG003",
                            message=(
                                f"kind {kind!r} builds {ctor}(), which has "
                                f"no concrete {method}() anywhere in its "
                                "base chain"
                            ),
                            hint=(
                                f"implement {method}() (the engine calls it "
                                "on every protocol) or inherit a concrete one"
                            ),
                        )


# -- BKND001: backend purity of the dense hot path ---------------------

_BKND_SCOPED_SUFFIXES = ("core/dense.py",)


class BackendPurityRule(Rule):
    rule_ids = ("BKND001",)
    family = "backend"
    description = (
        "dense hot-path modules (core/dense.py) must route every array "
        "op through the ArrayBackend contract from core/backend.py — "
        "no numpy imports or np.* attribute use"
    )

    def check_file(self, src: SourceFile) -> Iterator[Finding]:
        if not src.rel.endswith(_BKND_SCOPED_SUFFIXES):
            return
        imports = _import_map(src.tree)
        hint = (
            "go through repro.core.backend.get_backend() (or add the "
            "missing op to BACKEND_OPS) so the hot path stays "
            "retargetable to non-numpy array backends"
        )
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        yield Finding(
                            path=src.rel,
                            line=node.lineno,
                            rule="BKND001",
                            message=(
                                f"numpy imported ({alias.name}) in a "
                                "backend-pure dense hot-path module"
                            ),
                            hint=hint,
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and (
                    node.module == "numpy"
                    or node.module.startswith("numpy.")
                ):
                    yield Finding(
                        path=src.rel,
                        line=node.lineno,
                        rule="BKND001",
                        message=(
                            f"from {node.module} import ... in a "
                            "backend-pure dense hot-path module"
                        ),
                        hint=hint,
                    )
            elif isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ):
                # `np.take(...)`, `numpy.sum(...)` — any attribute chain
                # rooted at a name that resolves to numpy.
                origin = imports.get(node.value.id, node.value.id)
                if origin == "numpy" or origin.startswith("numpy."):
                    yield Finding(
                        path=src.rel,
                        line=node.lineno,
                        rule="BKND001",
                        message=(
                            f"direct numpy use "
                            f"{node.value.id}.{node.attr} in a "
                            "backend-pure dense hot-path module"
                        ),
                        hint=hint,
                    )


ALL_RULES: tuple[Rule, ...] = (
    RngDisciplineRule(),
    DeterminismRule(),
    LockDisciplineRule(),
    SqliteThreadRule(),
    RegistryCompletenessRule(),
    BackendPurityRule(),
)


def rule_catalog() -> list[dict[str, str]]:
    """``{ids, family, description}`` per rule (``repro lint --rules``)."""
    return [
        {
            "ids": ", ".join(rule.rule_ids),
            "family": rule.family,
            "description": rule.description,
        }
        for rule in ALL_RULES
    ]
