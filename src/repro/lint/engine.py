"""The lint rule engine: collect sources, parse, run rules, baseline.

Deliberately dependency-free (:mod:`ast` + :mod:`json` only) so the
linter can run in any environment the library itself runs in — CI, a
worker container, the pytest gate — with zero install steps.

Findings and baselines
----------------------
A :class:`Finding` names the violated rule, the offending location, a
one-line message, and a fix hint.  The baseline file is the escape
hatch for *explicitly grandfathered* findings: a JSON list of
``{rule, path, message}`` entries (line numbers excluded, so edits
above a grandfathered site do not churn the file).  ``repro lint``
exits non-zero only for findings **not** covered by the baseline; the
checked-in baseline for this repository is empty and the tier-1 gate
(``tests/test_lint.py``) keeps it that way.

Paths inside findings are POSIX-relative to the lint *root* (the
current directory for the CLI), which is what makes baseline entries
stable across machines and checkouts.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, type-only
    from repro.lint.rules import Rule

__all__ = [
    "BASELINE_SCHEMA",
    "Finding",
    "SourceFile",
    "apply_baseline",
    "collect_source_files",
    "load_baseline",
    "render_findings",
    "run_lint",
    "write_baseline",
]

BASELINE_SCHEMA = "repro.lint_baseline/1"

PARSE_RULE = "PARSE"
"""Pseudo-rule id for files the engine cannot parse at all."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str
    hint: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity under the baseline: line numbers deliberately excluded."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class SourceFile:
    """One parsed module handed to every rule."""

    path: Path
    """Absolute filesystem path."""
    rel: str
    """POSIX path relative to the lint root (the baseline identity)."""
    tree: ast.Module


def collect_source_files(
    paths: Sequence[str | Path], *, root: str | Path
) -> tuple[list[SourceFile], list[Finding]]:
    """Parse every ``*.py`` under *paths*; returns ``(files, parse_findings)``.

    Directories are walked recursively (``__pycache__`` and hidden
    directories skipped); files are taken as given.  A file that fails
    to parse becomes a :data:`PARSE_RULE` finding instead of aborting
    the run — a linter that dies on the file most likely to be broken
    would be useless exactly when needed.
    """
    root = Path(root).resolve()
    candidates: list[Path] = []
    for raw in paths:
        p = Path(raw).resolve()
        if p.is_dir():
            candidates.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if not any(
                    part == "__pycache__" or part.startswith(".")
                    for part in f.relative_to(p).parts
                )
            )
        else:
            candidates.append(p)
    files: list[SourceFile] = []
    findings: list[Finding] = []
    seen: set[Path] = set()
    for path in candidates:
        if path in seen:
            continue
        seen.add(path)
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except (SyntaxError, ValueError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            findings.append(
                Finding(
                    path=rel,
                    line=int(line),
                    rule=PARSE_RULE,
                    message=f"cannot parse: {exc.__class__.__name__}: {exc}",
                    hint="fix the syntax error; unparsable code cannot be audited",
                )
            )
            continue
        files.append(SourceFile(path=path, rel=rel, tree=tree))
    return files, findings


def run_lint(
    paths: Sequence[str | Path],
    *,
    root: str | Path,
    rules: "Iterable[Rule] | None" = None,
) -> list[Finding]:
    """Run *rules* (default: the full catalogue) over *paths*.

    Returns every finding, sorted by location — baseline filtering is
    the caller's concern (:func:`apply_baseline`), so programmatic users
    always see the complete picture.
    """
    if rules is None:
        from repro.lint.rules import ALL_RULES

        rules = ALL_RULES
    files, findings = collect_source_files(paths, root=root)
    for rule in rules:
        for src in files:
            findings.extend(rule.check_file(src))
        findings.extend(rule.check_project(files))
    return sorted(set(findings))


# -- baseline ---------------------------------------------------------


def load_baseline(path: str | Path) -> list[dict[str, str]]:
    """Grandfathered-finding entries from a baseline file.

    Raises
    ------
    ValueError
        If the file exists but is not a well-formed baseline — a typo'd
        baseline silently waiving nothing (or everything) is exactly the
        failure mode this checker exists to prevent.
    """
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or raw.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path} is not a lint baseline (expected schema "
            f"{BASELINE_SCHEMA!r}, got {raw.get('schema') if isinstance(raw, dict) else type(raw).__name__!r})"
        )
    entries = raw.get("findings")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: baseline 'findings' must be a list")
    out = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict) or not {"rule", "path", "message"} <= set(entry):
            raise ValueError(
                f"{path}: baseline entry {i} needs rule/path/message keys"
            )
        out.append(
            {
                "rule": str(entry["rule"]),
                "path": str(entry["path"]),
                "message": str(entry["message"]),
            }
        )
    return out


def write_baseline(findings: Iterable[Finding], path: str | Path) -> None:
    """Grandfather *findings* into a baseline file at *path*."""
    entries = sorted(
        {f.baseline_key() for f in findings}
    )  # dedupe: identity is (rule, path, message)
    payload = {
        "schema": BASELINE_SCHEMA,
        "findings": [
            {"rule": rule, "path": rel, "message": message}
            for rule, rel, message in entries
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: Sequence[Finding], baseline: Sequence[Mapping[str, str]]
) -> tuple[list[Finding], list[Finding], list[dict[str, str]]]:
    """Split *findings* against *baseline*: ``(new, waived, stale)``.

    *new* are unwaived findings (the failures), *waived* are matched by
    a baseline entry, *stale* are baseline entries matching nothing —
    fixed violations whose grandfather clause should be deleted.
    """
    keys = {(e["rule"], e["path"], e["message"]) for e in baseline}
    new = [f for f in findings if f.baseline_key() not in keys]
    waived = [f for f in findings if f.baseline_key() in keys]
    live = {f.baseline_key() for f in waived}
    stale = [
        {"rule": r, "path": p, "message": m}
        for (r, p, m) in sorted(keys - live)
    ]
    return new, waived, stale


def render_findings(findings: Sequence[Finding], *, hints: bool = True) -> str:
    """Human-facing report: one ``path:line: RULE message`` per finding."""
    lines = []
    for f in findings:
        lines.append(f"{f.location}: {f.rule} {f.message}")
        if hints and f.hint:
            lines.append(f"    hint: {f.hint}")
    return "\n".join(lines)
