"""``repro lint`` — AST-based invariant checking for this library.

The guarantees this reproduction sells — byte-identical sweeps at any
``--jobs``, content-addressed cache/job ids, SIGKILL-safe spool drains —
rest on coding invariants that ordinary tests cannot see: RNG
construction confined to :mod:`repro.util.rng`, pure canonicalisation in
every cache-key path, lock discipline in the threaded service layer, and
thread-affine SQLite handles in the durable queue.  This subpackage is
the static enforcement of those invariants (DESIGN.md §2.9): a small
rule engine over Python ASTs (:mod:`repro.lint.engine`) plus the
repo-specific rule catalogue (:mod:`repro.lint.rules`), wired into the
CLI as ``repro lint`` and into tier-1 as a pytest gate that keeps
``src/`` finding-free against a checked-in (empty) baseline.
"""

from repro.lint.engine import (
    BASELINE_SCHEMA,
    Finding,
    SourceFile,
    apply_baseline,
    collect_source_files,
    load_baseline,
    render_findings,
    run_lint,
    write_baseline,
)
from repro.lint.rules import ALL_RULES, Rule, rule_catalog

__all__ = [
    "ALL_RULES",
    "BASELINE_SCHEMA",
    "Finding",
    "Rule",
    "SourceFile",
    "apply_baseline",
    "collect_source_files",
    "load_baseline",
    "render_findings",
    "rule_catalog",
    "run_lint",
    "write_baseline",
]
