"""Best-of-k for odd ``k ≥ 5``: the Abdullah–Draief [1] regime.

[1] study local majority polling with ``k ≥ 5`` samples on random graphs
of a given degree sequence and prove ``O(log_k log_k n)`` consensus to the
initial majority provided ``k ≥ d̂_min`` (the *effective minimum degree*)
and the initial bias δ is a sufficiently large constant.  The paper under
reproduction stresses that the [1] proof technique *cannot* reach
``k = 3`` (assuming a "bad" opinion among 3 samples flips the majority),
which is exactly what its Sprinkling analysis overcomes — E8 compares the
two protocols' speed and robustness at small δ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dynamics import BestOfKDynamics
from repro.graphs.base import Graph
from repro.graphs.properties import effective_min_degree
from repro.util.validation import check_odd

__all__ = ["best_of_k_dynamics", "AbdullahDraiefCheck", "abdullah_draief_applicable"]


def best_of_k_dynamics(graph: Graph, k: int) -> BestOfKDynamics:
    """Best-of-k (odd ``k``) as a :class:`BestOfKDynamics`.

    Odd ``k`` only: the [1] protocol never ties.  Use
    :func:`repro.baselines.best_of_two.best_of_two_dynamics` for ``k=2``.
    """
    k = check_odd(k, "k")
    return BestOfKDynamics(graph, k=k)


@dataclass(frozen=True)
class AbdullahDraiefCheck:
    """Outcome of the [1] applicability predicate.

    Attributes
    ----------
    k:
        Sample size requested.
    effective_min_degree:
        ``d̂_min`` of the host.
    k_large_enough:
        Whether the structural sample-size hypothesis holds.  [1] poll
        ``min(k, deg)`` neighbours *without* replacement and require
        ``k ≥ d̂_min``; in this library's with-replacement model the
        operative requirement is that samples be distinct w.h.p., i.e.
        ``d̂_min ≫ k``, so the predicate accepts when
        ``k ≥ min(d̂_min, 5)`` and ``notes`` records the collision scale.
    notes:
        Explanation of the hypothesis translation.
    """

    k: int
    effective_min_degree: int
    k_large_enough: bool
    notes: str

    @property
    def applicable(self) -> bool:
        return self.k_large_enough and self.k >= 5


def abdullah_draief_applicable(graph: Graph, k: int) -> AbdullahDraiefCheck:
    """Check whether the [1] theorem's structural hypothesis covers *graph*.

    [1] require odd ``k ≥ 5`` and ``k ≥ d̂_min`` (each vertex polls its
    whole neighbourhood when its degree is below ``k``; the effective
    minimum degree guarantees enough vertices have that many
    neighbours).  The original model polls *without* replacement, whereas
    this library samples *with* replacement (the paper under
    reproduction's model); for ``d̂_min ≫ k`` the two coincide up to
    ``O(k²/d)`` collision probability, which is the regime all our dense
    hosts are in.
    """
    k = check_odd(k, "k")
    dmin_eff = effective_min_degree(graph)
    k_ok = k >= min(dmin_eff, 5)
    notes = (
        f"k={k}, effective d_min={dmin_eff}; with-replacement sampling "
        f"approximates [1]'s without-replacement polling up to "
        f"O(k^2/d) = O({k * k}/{graph.min_degree}) per vertex per round"
    )
    return AbdullahDraiefCheck(
        k=k,
        effective_min_degree=dmin_eff,
        k_large_enough=k_ok,
        notes=notes,
    )
