"""Best-of-1: the voter model.

Each vertex adopts the opinion of a single uniformly random neighbour.
Two classical facts the paper's introduction quotes, both reproducible
here:

1. *Degree-proportional winning*: the probability that a colour wins is
   the initial fraction of degree volume it holds,
   ``P(red wins) = d(R₀)/d(V)`` — exact on any connected non-bipartite
   graph (the martingale argument).  So the voter model does **not**
   amplify majorities, the failing Best-of-3 fixes.
2. *Slow consensus*: expected consensus time is governed by coalescing
   random walks (Θ(n) on expanders), versus ``O(log log n)`` for
   Best-of-3 — measured side by side in E8.
"""

from __future__ import annotations

import numpy as np

from repro.core.dynamics import BestOfKDynamics
from repro.core.ensemble import EnsembleResult, run_ensemble
from repro.core.opinions import RED
from repro.core.protocols import Voter
from repro.graphs.base import Graph
from repro.util.rng import SeedLike

__all__ = ["voter_dynamics", "voter_win_probability", "voter_ensemble"]


def voter_dynamics(graph: Graph) -> BestOfKDynamics:
    """The voter model as a :class:`BestOfKDynamics` with ``k = 1``."""
    return BestOfKDynamics(graph, k=1)


def voter_ensemble(
    graph: Graph,
    *,
    trials: int,
    initial_blue: int,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> EnsembleResult:
    """Batched voter-model ensemble from an exact initial count.

    A thin wrapper over the engine with the
    :class:`~repro.core.protocols.Voter` protocol (``BestOfK(1)``): all
    trials advance together — essential for the voter model, whose
    Θ(n)-scale consensus times made the old per-trial loop the slowest
    part of E8's win-law check.  *max_steps* defaults to ``100·n`` (the
    coalescing-walk scale on expanders).
    """
    if max_steps is None:
        max_steps = 100 * graph.num_vertices
    return run_ensemble(
        graph,
        protocol=Voter(),
        replicas=trials,
        seed=seed,
        max_steps=max_steps,
        initial_blue_counts=initial_blue,
        record_trajectories=False,
    )


def voter_win_probability(graph: Graph, opinions: np.ndarray, colour: int = RED) -> float:
    """Exact win probability of *colour* under the voter model.

    ``P(colour wins) = d(X₀)/d(V)`` where ``X₀`` is the set of vertices
    initially holding *colour* (valid for connected non-bipartite hosts;
    on bipartite hosts the synchronous voter model need not converge at
    all).  E8 validates this against simulation and contrasts it with the
    majority-amplifying behaviour of Best-of-3.
    """
    n = graph.num_vertices
    opinions = np.asarray(opinions)
    if opinions.shape != (n,):
        raise ValueError(
            f"opinions shape {opinions.shape} does not match graph n={n}"
        )
    mask = opinions == colour
    return graph.degree_volume(mask) / graph.degree_volume()
