"""Multi-opinion 3-majority with random tie-breaking: Becchetti et al. [2].

[2] study Best-of-3 on the complete graph with ``q`` initial opinions:
each vertex samples three neighbours and adopts the majority of the
sample, breaking three-way ties by adopting a uniformly random one of the
three sampled opinions.  They prove plurality consensus w.h.p. in
``O(min{q, (n/log n)^{1/3}}·log n)`` rounds when the initial gap between
the top two opinions is
``Ω(min{√(2q), (n/log n)^{1/6}}·√(n·log n))``.

This module is a thin wrapper over the
:class:`~repro.core.protocols.Plurality` protocol (opinion codes
``0..q-1``): :func:`plurality_step` is the protocol's batched round at
``R = 1``, :func:`plurality_ensemble` drives many trials through the
ensemble engine at once (counts batched over the replica axis), and
:func:`plurality_run` keeps the single-run per-colour count trajectory
the [2] gap analysis consumes.  :func:`becchetti_gap_threshold` provides
the [2] threshold for the E8 comparison harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.ensemble import EnsembleResult, run_ensemble
from repro.core.protocols import Plurality
from repro.graphs.base import Graph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive_int

__all__ = [
    "random_plurality_opinions",
    "plurality_step",
    "PluralityResult",
    "plurality_run",
    "plurality_ensemble",
    "becchetti_gap_threshold",
]


def random_plurality_opinions(
    n: int, probabilities: np.ndarray, rng: SeedLike = None
) -> np.ndarray:
    """I.i.d. initial opinions over ``q`` colours with given probabilities."""
    n = check_positive_int(n, "n")
    probs = np.asarray(probabilities, dtype=np.float64)
    if probs.ndim != 1 or probs.size < 2:
        raise ValueError("need at least two opinion probabilities")
    if np.any(probs < 0) or not math.isclose(float(probs.sum()), 1.0, rel_tol=1e-9):
        raise ValueError(f"probabilities must be non-negative and sum to 1, got {probs}")
    gen = as_generator(rng)
    return gen.choice(probs.size, size=n, p=probs).astype(np.int64)


def plurality_step(
    graph: Graph, opinions: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """One synchronous round of q-colour 3-majority with random ties.

    For each vertex, sort its three sampled opinions: if any value repeats
    the median equals the majority value; otherwise (three distinct
    values) adopt a uniform random one of the three — the [2] tie rule.
    Thin wrapper: one row of the batched
    :meth:`~repro.core.protocols.Plurality.step_batch` round.
    """
    n = graph.num_vertices
    opinions = np.asarray(opinions)
    if opinions.shape != (n,):
        raise ValueError(
            f"opinions shape {opinions.shape} does not match graph n={n}"
        )
    q = max(int(opinions.max()) + 1, 2)
    proto = Plurality(q)
    return proto.step_batch(
        graph, opinions.astype(np.int64, copy=False)[None, :], rng
    )[0]


@dataclass
class PluralityResult:
    """Outcome of a q-colour plurality run.

    Attributes
    ----------
    converged:
        Whether a single opinion took over within the budget.
    winner:
        The consensus opinion code, or ``None``.
    steps:
        Rounds executed.
    count_trajectory:
        ``(steps+1, q)`` matrix of per-colour counts over time.
    """

    converged: bool
    winner: int | None
    steps: int
    count_trajectory: np.ndarray


def plurality_run(
    graph: Graph,
    initial_opinions: np.ndarray,
    *,
    q: int | None = None,
    seed: SeedLike = None,
    max_steps: int = 10_000,
) -> PluralityResult:
    """Run q-colour 3-majority until consensus or *max_steps*."""
    max_steps = check_positive_int(max_steps, "max_steps")
    n = graph.num_vertices
    opinions = np.asarray(initial_opinions).astype(np.int64, copy=True)
    if opinions.shape != (n,):
        raise ValueError(
            f"initial_opinions shape {opinions.shape} does not match n={n}"
        )
    if q is None:
        q = int(opinions.max()) + 1
    q = check_positive_int(q, "q")
    if opinions.min() < 0 or opinions.max() >= q:
        raise ValueError(f"opinion codes must lie in [0, {q})")
    gen = as_generator(seed)
    counts = [np.bincount(opinions, minlength=q)]
    steps = 0
    while counts[-1].max() < n and steps < max_steps:
        opinions = plurality_step(graph, opinions, gen)
        counts.append(np.bincount(opinions, minlength=q))
        steps += 1
    trajectory = np.stack(counts, axis=0)
    converged = int(trajectory[-1].max()) == n
    winner = int(trajectory[-1].argmax()) if converged else None
    return PluralityResult(
        converged=converged,
        winner=winner,
        steps=steps,
        count_trajectory=trajectory,
    )


def plurality_ensemble(
    graph: Graph,
    *,
    trials: int,
    probabilities: np.ndarray,
    seed: SeedLike = None,
    max_steps: int = 10_000,
) -> EnsembleResult:
    """Batched q-colour plurality ensemble from i.i.d. initial opinions.

    All trials advance together through the ensemble engine with the
    :class:`~repro.core.protocols.Plurality` protocol — per-round counts
    are batched over the replica axis (``blue_trajectories`` holds each
    trial's *leading-colour* count, winners the consensus colour code).
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    proto = Plurality(probs.size)

    def initializer(
        n: int, rng: np.random.Generator
    ) -> np.ndarray:
        return random_plurality_opinions(n, probs, rng=rng)

    return run_ensemble(
        graph,
        protocol=proto,
        replicas=trials,
        seed=seed,
        max_steps=max_steps,
        initializer=initializer,
        record_trajectories=False,
    )


def becchetti_gap_threshold(n: int, q: int) -> float:
    """The [2] initial-gap scale ``min{√(2q), (n/log n)^{1/6}}·√(n·log n)``.

    [2] prove plurality consensus w.h.p. when the count gap between the
    largest and second-largest initial opinions is a sufficiently large
    constant times this (complete-graph hosts).
    """
    n = check_positive_int(n, "n")
    q = check_positive_int(q, "q")
    if n < 3:
        raise ValueError(f"need n >= 3, got {n}")
    log_n = math.log(n)
    return min(math.sqrt(2.0 * q), (n / log_n) ** (1.0 / 6.0)) * math.sqrt(n * log_n)
