"""Deterministic synchronous local majority (full-neighbourhood polling).

The classic deterministic contrast to sampled majority: every vertex
simultaneously adopts the majority opinion of its *entire* neighbourhood
(keeping its own opinion on ties).  Deterministic synchronous majority
need not converge — it can enter period-2 cycles (e.g. the blinker on a
complete bipartite graph) — so the runner detects both fixed points and
2-cycles, a behaviour impossible for the randomised Best-of-k family
(whose consensus states are the only absorbing states reachable w.p. 1).

Requires an explicit :class:`~repro.graphs.csr.CSRGraph` host (the update
is one sparse matrix product per round).  The round itself is the
:class:`~repro.core.protocols.LocalMajority` protocol's batched step
(this runner drives it at ``R = 1`` and adds the Goles–Olivos 2-cycle
detector, which the generic engine loop deliberately omits); multi-trial
ensembles go through ``run_ensemble(protocol=LocalMajority(), ...)``
directly, as E8 does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.opinions import BLUE, RED
from repro.core.protocols import LocalMajority
from repro.graphs.base import Graph
from repro.graphs.csr import CSRGraph
from repro.util.validation import check_positive_int

__all__ = ["LocalMajorityResult", "local_majority_run"]


@dataclass
class LocalMajorityResult:
    """Outcome of a deterministic local-majority run.

    Attributes
    ----------
    outcome:
        ``"consensus"``, ``"fixed_point"`` (non-unanimous stable state),
        ``"cycle"`` (period-2 oscillation) or ``"timeout"``.
    winner:
        Consensus colour if ``outcome == "consensus"``, else ``None``.
    steps:
        Rounds executed before the outcome was detected.
    blue_trajectory:
        Blue counts per round.
    final_opinions:
        State at termination.
    """

    outcome: str
    winner: int | None
    steps: int
    blue_trajectory: np.ndarray
    final_opinions: np.ndarray


def local_majority_run(
    graph: Graph,
    initial_opinions: np.ndarray,
    *,
    max_steps: int = 10_000,
) -> LocalMajorityResult:
    """Run synchronous deterministic majority until it stabilises.

    One round computes blue-neighbour counts with an adjacency matvec and
    compares against half the degree; exact ties keep the current
    opinion.  Detects convergence (state repeats with period 1), 2-cycles
    (period 2 — guaranteed terminal for threshold dynamics by the
    Goles–Olivos theorem), or gives up at *max_steps*.
    """
    max_steps = check_positive_int(max_steps, "max_steps")
    csr = graph if isinstance(graph, CSRGraph) else graph.to_csr()
    n = csr.num_vertices
    opinions = np.asarray(initial_opinions)
    if opinions.shape != (n,):
        raise ValueError(
            f"initial_opinions shape {opinions.shape} does not match n={n}"
        )
    protocol = LocalMajority()
    current = opinions.astype(protocol.opinion_dtype, copy=True)
    prev = None
    trajectory = [int(current.sum())]
    for step in range(1, max_steps + 1):
        nxt = protocol.step_batch(csr, current[None, :], rng=None)[0]
        trajectory.append(int(nxt.sum()))
        if np.array_equal(nxt, current):
            blue = int(current.sum())
            if blue == 0 or blue == n:
                return LocalMajorityResult(
                    outcome="consensus",
                    winner=BLUE if blue == n else RED,
                    steps=step - 1,
                    blue_trajectory=np.asarray(trajectory[:-1], dtype=np.int64),
                    final_opinions=current,
                )
            return LocalMajorityResult(
                outcome="fixed_point",
                winner=None,
                steps=step - 1,
                blue_trajectory=np.asarray(trajectory[:-1], dtype=np.int64),
                final_opinions=current,
            )
        if prev is not None and np.array_equal(nxt, prev):
            return LocalMajorityResult(
                outcome="cycle",
                winner=None,
                steps=step,
                blue_trajectory=np.asarray(trajectory, dtype=np.int64),
                final_opinions=nxt,
            )
        prev = current
        current = nxt
    return LocalMajorityResult(
        outcome="timeout",
        winner=None,
        steps=max_steps,
        blue_trajectory=np.asarray(trajectory, dtype=np.int64),
        final_opinions=current,
    )
