"""Baseline protocols from the paper's introduction.

Every protocol the paper positions Best-of-3 against, implemented on the
same :class:`repro.graphs.Graph` interface so E8/E11 comparisons are
apples-to-apples:

* :mod:`repro.baselines.voter` — Best-of-1 (the voter model) with its
  exact degree-proportional win-probability law.
* :mod:`repro.baselines.best_of_two` — Best-of-2 with both tie rules and
  the Cooper–Elsässer–Radzik [4] / Cooper et al. [5] sufficient
  conditions.
* :mod:`repro.baselines.best_of_k` — Best-of-k for odd ``k ≥ 5`` with the
  Abdullah–Draief [1] applicability predicate.
* :mod:`repro.baselines.local_majority` — deterministic full-neighbourhood
  majority (classic contrast protocol).
* :mod:`repro.baselines.plurality` — multi-opinion (q-colour) 3-majority
  with random tie-breaking, the Becchetti et al. [2] setting.
"""

from repro.baselines.best_of_k import abdullah_draief_applicable, best_of_k_dynamics
from repro.baselines.best_of_two import (
    best_of_two_dynamics,
    cooper_imbalance_threshold,
    satisfies_cooper_condition,
    satisfies_spectral_condition,
)
from repro.baselines.local_majority import LocalMajorityResult, local_majority_run
from repro.baselines.plurality import (
    PluralityResult,
    becchetti_gap_threshold,
    plurality_run,
    random_plurality_opinions,
)
from repro.baselines.voter import voter_dynamics, voter_win_probability

__all__ = [
    "voter_dynamics",
    "voter_win_probability",
    "best_of_two_dynamics",
    "cooper_imbalance_threshold",
    "satisfies_cooper_condition",
    "satisfies_spectral_condition",
    "best_of_k_dynamics",
    "abdullah_draief_applicable",
    "local_majority_run",
    "LocalMajorityResult",
    "plurality_run",
    "PluralityResult",
    "random_plurality_opinions",
    "becchetti_gap_threshold",
]
