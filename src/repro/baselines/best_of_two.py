"""Best-of-2 voting and the sufficient conditions of [4] and [5].

Best-of-2 samples two random neighbours; on disagreement the tie rule
decides (keep own opinion, or flip a fair coin).  The paper's introduction
cites two sufficient conditions for majority consensus in ``O(log n)``
rounds:

* **Cooper–Elsässer–Radzik [4]** (``d``-regular hosts): initial imbalance
  ``|R₀| − |B₀| ≥ K·n·√(1/d + d/n)`` for a large constant ``K``.
* **Cooper–Elsässer–Radzik–Rivera–Shiraga [5]** (general expanders):
  degree-volume imbalance ``d(R₀) − d(B₀) ≥ 4λ₂²·d(V)`` where ``λ₂`` is
  the second largest absolute transition-matrix eigenvalue.

E11 sweeps the initial imbalance through these thresholds and measures
the win-probability transition.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.dynamics import BestOfKDynamics, TieRule
from repro.core.ensemble import EnsembleResult, run_ensemble
from repro.core.opinions import BLUE, RED
from repro.graphs.base import Graph
from repro.graphs.csr import CSRGraph
from repro.util.rng import SeedLike

__all__ = [
    "best_of_two_dynamics",
    "best_of_two_ensemble",
    "cooper_imbalance_threshold",
    "satisfies_cooper_condition",
    "satisfies_spectral_condition",
]


def best_of_two_dynamics(
    graph: Graph, *, tie_rule: TieRule = TieRule.KEEP_SELF
) -> BestOfKDynamics:
    """Best-of-2 as a :class:`BestOfKDynamics` with the chosen tie rule."""
    return BestOfKDynamics(graph, k=2, tie_rule=tie_rule)


def best_of_two_ensemble(
    graph: Graph,
    *,
    trials: int,
    initial_blue: int,
    tie_rule: TieRule = TieRule.KEEP_SELF,
    seed: SeedLike = None,
    max_steps: int = 2000,
) -> EnsembleResult:
    """Batched Best-of-2 ensemble from an exact initial count.

    E11's imbalance-threshold sweep measures red-win rates over many
    conditioned starts; one engine call replaces its per-trial run loop
    (uniform placement per trial, independent spawned streams).
    """
    return run_ensemble(
        graph,
        replicas=trials,
        k=2,
        tie_rule=tie_rule,
        seed=seed,
        max_steps=max_steps,
        initial_blue_counts=initial_blue,
        record_trajectories=False,
    )


def cooper_imbalance_threshold(n: int, d: int, *, K: float = 1.0) -> float:
    """The [4] threshold ``K·n·√(1/d + d/n)`` for ``d``-regular graphs.

    [4] prove consensus-to-majority w.h.p. in ``O(log n)`` when the count
    imbalance exceeds this (for a sufficiently large constant ``K``);
    note the threshold is minimised at ``d ≈ √n``, where it is
    ``Θ(n^{3/4})``.
    """
    if n < 1 or d < 1:
        raise ValueError(f"need n, d >= 1, got n={n}, d={d}")
    if K <= 0:
        raise ValueError(f"K must be positive, got {K}")
    return K * n * math.sqrt(1.0 / d + d / n)


def satisfies_cooper_condition(
    graph: Graph, opinions: np.ndarray, *, K: float = 1.0
) -> bool:
    """Whether the [4] imbalance condition holds for red vs blue.

    Uses the minimum degree for ``d`` (exact on regular hosts, the [4]
    setting; conservative otherwise).
    """
    n = graph.num_vertices
    opinions = np.asarray(opinions)
    if opinions.shape != (n,):
        raise ValueError(
            f"opinions shape {opinions.shape} does not match graph n={n}"
        )
    reds = int(np.count_nonzero(opinions == RED))
    blues = int(np.count_nonzero(opinions == BLUE))
    return reds - blues >= cooper_imbalance_threshold(n, graph.min_degree, K=K)


def satisfies_spectral_condition(
    graph: CSRGraph, opinions: np.ndarray, *, lambda2: float | None = None
) -> bool:
    """Whether the [5] condition ``d(R₀) − d(B₀) ≥ 4λ₂²·d(V)`` holds.

    Parameters
    ----------
    graph:
        Explicit host (λ₂ needs the adjacency structure).
    opinions:
        Initial opinion vector.
    lambda2:
        Pass a precomputed λ₂ to avoid repeated eigensolves in sweeps.
    """
    from repro.graphs.spectral import second_eigenvalue

    n = graph.num_vertices
    opinions = np.asarray(opinions)
    if opinions.shape != (n,):
        raise ValueError(
            f"opinions shape {opinions.shape} does not match graph n={n}"
        )
    if lambda2 is None:
        lambda2 = second_eigenvalue(graph)
    red_vol = graph.degree_volume(opinions == RED)
    blue_vol = graph.degree_volume(opinions == BLUE)
    return red_vol - blue_vol >= 4.0 * lambda2 * lambda2 * graph.degree_volume()
