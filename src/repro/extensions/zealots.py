"""Zealots: stubborn vertices that never update their opinion.

A standard robustness probe for majority dynamics: plant ``z`` blue
*zealots* that hold BLUE forever while every other vertex runs Best-of-3.
Because ordinary vertices sample zealots like anyone else, the mean-field
map on a dense host becomes

    ``b ↦ (1 − z/n) · (3b̃² − 2b̃³) + z/n``     with ``b̃ = b``

i.e. the non-zealot update probability is unchanged (they sample from the
whole population, fraction ``b`` blue) but a ``z/n`` mass of blue is
pinned.  For small ``z`` the red majority still takes every ordinary
vertex (the blue fraction settles at ``≈ z/n``); red *full* consensus is
impossible, so the observable is the terminal ordinary-vertex state and
whether blue can leverage the pinned mass to take over — which requires
``z/n`` comparable to the gap-to-1/2, mirroring the paper's δ threshold
from the other side.

This single-trial runner is the *reference implementation*: ensembles go
through ``run_ensemble(protocol=ZealotBestOfK(z), ...)``
(:mod:`repro.core.protocols`), where zealots become pinned count-chain
slots on exchangeable hosts; ``tests/test_protocols.py`` enforces
distribution equivalence between the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.opinions import BLUE, OPINION_DTYPE
from repro.graphs.base import Graph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_nonnegative_int, check_positive_int

__all__ = ["ZealotRunResult", "zealot_best_of_three_run"]


@dataclass
class ZealotRunResult:
    """Outcome of a Best-of-3 run with blue zealots.

    Attributes
    ----------
    ordinary_outcome:
        ``"all_red"``, ``"all_blue"`` (every *ordinary* vertex unanimous)
        or ``"mixed"`` at budget exhaustion.
    rounds:
        Rounds executed.
    blue_trajectory:
        Total blue counts per round (zealots included).
    final_ordinary_blue:
        Blue count among non-zealots at the end.
    """

    ordinary_outcome: str
    rounds: int
    blue_trajectory: np.ndarray
    final_ordinary_blue: int


def zealot_best_of_three_run(
    graph: Graph,
    initial_opinions: np.ndarray,
    zealots: np.ndarray | int,
    *,
    seed: SeedLike = None,
    max_rounds: int = 2000,
) -> ZealotRunResult:
    """Run Best-of-3 with the given blue zealots held fixed.

    Parameters
    ----------
    graph, initial_opinions, seed:
        As in the synchronous engine; zealot entries of the initial
        vector are forced to BLUE.
    zealots:
        Either an integer ``z`` (vertices ``0..z-1`` become zealots) or
        an explicit index array.
    max_rounds:
        Budget; the run stops early once the ordinary vertices are
        unanimous (the only stable outcomes).
    """
    n = graph.num_vertices
    opinions = np.asarray(initial_opinions)
    if opinions.shape != (n,):
        raise ValueError(
            f"initial_opinions shape {opinions.shape} does not match n={n}"
        )
    if np.isscalar(zealots):
        z = check_nonnegative_int(int(zealots), "zealots")
        if z > n:
            raise ValueError(f"zealot count {z} exceeds n={n}")
        zealot_idx = np.arange(z, dtype=np.int64)
    else:
        zealot_idx = np.unique(np.asarray(zealots, dtype=np.int64))
        if zealot_idx.size and (
            zealot_idx.min() < 0 or zealot_idx.max() >= n
        ):
            raise ValueError(f"zealot ids must lie in [0, {n})")
    check_positive_int(max_rounds, "max_rounds")
    gen = as_generator(seed)

    ordinary = np.ones(n, dtype=bool)
    ordinary[zealot_idx] = False
    state = opinions.astype(OPINION_DTYPE, copy=True)
    state[zealot_idx] = BLUE
    vertices = graph.vertex_ids  # cached; no per-run O(n) id allocation
    trajectory = [int(state.sum())]
    rounds = 0
    n_ordinary = int(ordinary.sum())
    while rounds < max_rounds:
        ord_blue = int(state[ordinary].sum())
        if ord_blue == 0 or ord_blue == n_ordinary:
            break
        draws = graph.sample_neighbors(vertices, 3, gen)
        votes = state[draws].sum(axis=1, dtype=np.int64)
        new_state = (votes >= 2).astype(OPINION_DTYPE)
        new_state[zealot_idx] = BLUE
        state = new_state
        trajectory.append(int(state.sum()))
        rounds += 1
    ord_blue = int(state[ordinary].sum())
    if n_ordinary == 0:
        outcome = "all_blue"
    elif ord_blue == 0:
        outcome = "all_red"
    elif ord_blue == n_ordinary:
        outcome = "all_blue"
    else:
        outcome = "mixed"
    return ZealotRunResult(
        ordinary_outcome=outcome,
        rounds=rounds,
        blue_trajectory=np.asarray(trajectory, dtype=np.int64),
        final_ordinary_blue=ord_blue,
    )
