"""ε-noisy Best-of-Three: random opinion adoption with probability eta.

With probability ``eta`` a vertex ignores its sample and adopts a uniform
random opinion; otherwise it follows the Best-of-3 majority.  Consensus
states stop being absorbing, so the process has a genuine stationary
regime.  The mean-field map becomes

    ``b ↦ (1 − eta)·(3b² − 2b³) + eta/2``

whose stable fixed points undergo a pitchfork-style bifurcation: for
``eta`` below the critical noise the map keeps two stable fixed points
near 0 and 1 (metastable near-consensus that remembers the initial
majority); above it only ``b = 1/2`` survives and the majority signal is
destroyed.  Setting the fixed-point equation's discriminant to zero gives
the exact critical value ``eta* = 1/3``: solving
``(1−eta)(3b²−2b³) + eta/2 = b`` at the tangency point ``b = 1/2 ±
1/(2√3)`` — the same ``1/(2√3)`` gap target that rules Lemma 4's phase
boundary.

The module provides the exact map, its fixed points, and a simulation
runner measuring the stationary majority level; ``test_ext_noisy``
verifies the bifurcation on both the map and the simulation.

This single-trial runner is the *reference implementation*: ensembles go
through ``run_ensemble(protocol=NoisyBestOfK(eta), ...)``
(:mod:`repro.core.protocols`), which batches replicas and — on
exchangeable hosts — runs the exact η-mixed count chain;
``tests/test_protocols.py`` enforces distribution equivalence between
the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.opinions import OPINION_DTYPE
from repro.graphs.base import Graph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive_int, check_probability

__all__ = [
    "CRITICAL_NOISE",
    "noisy_ideal_step",
    "noisy_fixed_points",
    "NoisyRunResult",
    "noisy_best_of_three_run",
]

CRITICAL_NOISE: float = 1.0 / 3.0
"""Critical noise rate: below it the mean-field map retains metastable
near-consensus fixed points; above it only b = 1/2 is stable."""


def noisy_ideal_step(b: float, eta: float) -> float:
    """The noisy mean-field map ``(1−eta)(3b²−2b³) + eta/2``.

    Thin wrapper over the general-``k`` map in
    :func:`repro.core.meanfield.noisy_best_of_k_map` at ``k = 3``.
    """
    from repro.core.meanfield import noisy_best_of_k_map

    return noisy_best_of_k_map(b, eta, 3)


def noisy_fixed_points(eta: float) -> list[float]:
    """All fixed points of the noisy map in ``[0, 1]``, sorted.

    ``b = 1/2`` is always a fixed point; the other two exist iff
    ``eta < 1/3`` and are ``1/2 ± √(1 − 3eta) / (2√(1 − eta))`` (roots of
    ``2(1−eta)b² − 2(1−eta)b + (1−eta) − ... `` reduced by the symmetry
    ``b ↦ 1−b``).
    """
    eta = check_probability(eta, "eta")
    points = [0.5]
    if eta < CRITICAL_NOISE and eta < 1.0:
        offset = math.sqrt(1.0 - 3.0 * eta) / (2.0 * math.sqrt(1.0 - eta))
        points.extend([0.5 - offset, 0.5 + offset])
    return sorted(points)


@dataclass
class NoisyRunResult:
    """Outcome of a noisy Best-of-3 run.

    Attributes
    ----------
    blue_trajectory:
        Blue counts per round (never reaches an absorbing state for
        ``eta > 0``; the run always uses the full budget).
    stationary_blue_fraction:
        Mean blue fraction over the second half of the run — the
        metastable level the process settles at.
    majority_preserved:
        Whether the stationary level stays on the initial-majority side
        of 1/2 (the "memory" the sub-critical regime retains).
    """

    blue_trajectory: np.ndarray
    stationary_blue_fraction: float
    majority_preserved: bool


def noisy_best_of_three_run(
    graph: Graph,
    initial_opinions: np.ndarray,
    eta: float,
    *,
    seed: SeedLike = None,
    rounds: int = 100,
) -> NoisyRunResult:
    """Run ε-noisy Best-of-3 for a fixed number of rounds.

    One round: every vertex draws its 3-sample majority, then a uniform
    ``eta``-fraction of vertices is resampled to coin flips.
    """
    n = graph.num_vertices
    opinions = np.asarray(initial_opinions)
    if opinions.shape != (n,):
        raise ValueError(
            f"initial_opinions shape {opinions.shape} does not match n={n}"
        )
    eta = check_probability(eta, "eta")
    rounds = check_positive_int(rounds, "rounds")
    gen = as_generator(seed)

    state = opinions.astype(OPINION_DTYPE, copy=True)
    vertices = graph.vertex_ids  # cached; no per-run O(n) id allocation
    trajectory = [int(state.sum())]
    initially_blue_minority = trajectory[0] * 2 < n
    for _ in range(rounds):
        draws = graph.sample_neighbors(vertices, 3, gen)
        votes = state[draws].sum(axis=1, dtype=np.int64)
        state = (votes >= 2).astype(OPINION_DTYPE)
        noisy = gen.random(n) < eta
        m = int(noisy.sum())
        if m:
            state[noisy] = (gen.random(m) < 0.5).astype(OPINION_DTYPE)
        trajectory.append(int(state.sum()))
    traj = np.asarray(trajectory, dtype=np.int64)
    stationary = float(traj[rounds // 2 :].mean() / n)
    preserved = (stationary < 0.5) == initially_blue_minority
    return NoisyRunResult(
        blue_trajectory=traj,
        stationary_blue_fraction=stationary,
        majority_preserved=preserved,
    )
