"""Extensions beyond the paper's model.

The paper analyses the *synchronous, noiseless, fully-conformist*
Best-of-Three dynamics.  This subpackage implements the three standard
relaxations studied in the surrounding literature so the reproduction can
probe how far the headline behaviour survives:

* :mod:`repro.extensions.async_dynamics` — asynchronous (sequential)
  updates: one uniformly random vertex revises per tick; time is measured
  in *sweeps* (n ticks) for comparability with synchronous rounds.
* :mod:`repro.extensions.noisy_dynamics` — ε-noisy updates: with
  probability ``eta`` a vertex adopts a uniform random opinion instead of
  the sample majority.  Consensus becomes metastable rather than
  absorbing; the interesting observable is the stationary majority level.
* :mod:`repro.extensions.zealots` — stubborn vertices that never update;
  measures how many blue zealots are needed to block or flip the red
  majority.

Each module exposes the same run/result idioms as :mod:`repro.core` and
is exercised by its own experiment-style tests and ablation benchmarks.
"""

from repro.extensions.async_dynamics import AsyncRunResult, async_best_of_k_run
from repro.extensions.noisy_dynamics import NoisyRunResult, noisy_best_of_three_run
from repro.extensions.zealots import ZealotRunResult, zealot_best_of_three_run

__all__ = [
    "async_best_of_k_run",
    "AsyncRunResult",
    "noisy_best_of_three_run",
    "NoisyRunResult",
    "zealot_best_of_three_run",
    "ZealotRunResult",
]
