"""Asynchronous (sequential) Best-of-k dynamics.

The paper's model is synchronous: all vertices update simultaneously.
The asynchronous variant — at each tick one uniformly random vertex
samples ``k`` neighbours and updates — is the usual continuous-time
picture discretised, and the natural question is whether the
``O(log log n)`` behaviour survives when measured in *sweeps* (``n``
ticks ≈ one parallel round).

It does, up to constants, on dense hosts: the drift argument of
equation (1) is per-vertex and does not rely on simultaneity.  The
``bench_ablation_async`` benchmark and ``test_ext_async`` tests measure
this.

Implementation notes: ticks are processed in vectorised *batches* of
``batch`` random vertices.  Within a batch, updates are computed against
the state at batch start and written back; a vertex drawn twice in one
batch simply gets the later write.  Batch size trades fidelity for speed
— ``batch=1`` is the exact sequential chain; the default ``batch = n/16``
changes nothing observable on dense hosts (each batch touches a small
fraction of vertices, so reads rarely race) while recovering most of the
vectorised throughput.

This single-trial runner is the *reference implementation*: ensembles go
through ``run_ensemble(protocol=AsyncSweepBestOfK(k), ...)``
(:mod:`repro.core.protocols`), which advances all replicas' sweeps
together; ``tests/test_protocols.py`` enforces distribution equivalence
between the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.opinions import BLUE, OPINION_DTYPE, RED
from repro.graphs.base import Graph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive_int

__all__ = ["AsyncRunResult", "async_best_of_k_run"]


@dataclass
class AsyncRunResult:
    """Outcome of an asynchronous run.

    Attributes
    ----------
    converged:
        Whether consensus was reached within the sweep budget.
    winner:
        ``RED``/``BLUE`` when converged, else ``None``.
    sweeps:
        Sweeps executed (one sweep = ``n`` single-vertex ticks); the
        async analogue of synchronous rounds.
    blue_trajectory:
        Blue count sampled once per sweep (length ``sweeps + 1``).
    """

    converged: bool
    winner: int | None
    sweeps: int
    blue_trajectory: np.ndarray


def async_best_of_k_run(
    graph: Graph,
    initial_opinions: np.ndarray,
    *,
    k: int = 3,
    seed: SeedLike = None,
    max_sweeps: int = 10_000,
    batch: int | None = None,
) -> AsyncRunResult:
    """Run sequential Best-of-k until consensus or *max_sweeps*.

    Parameters
    ----------
    graph, initial_opinions, k, seed:
        As in the synchronous engine.
    max_sweeps:
        Budget in sweeps (``n`` ticks each).
    batch:
        Ticks processed per vectorised batch (default ``max(n // 16, 1)``;
        pass 1 for the exact one-vertex-at-a-time chain).
    """
    n = graph.num_vertices
    opinions = np.asarray(initial_opinions)
    if opinions.shape != (n,):
        raise ValueError(
            f"initial_opinions shape {opinions.shape} does not match n={n}"
        )
    k = check_positive_int(k, "k")
    max_sweeps = check_positive_int(max_sweeps, "max_sweeps")
    if batch is None:
        batch = max(n // 16, 1)
    batch = check_positive_int(batch, "batch")
    gen = as_generator(seed)

    state = opinions.astype(OPINION_DTYPE, copy=True)
    blue = int(state.sum())
    trajectory = [blue]
    ticks_per_sweep = n
    sweeps = 0
    while 0 < blue < n and sweeps < max_sweeps:
        done = 0
        while done < ticks_per_sweep:
            m = min(batch, ticks_per_sweep - done)
            vertices = gen.integers(0, n, size=m, dtype=np.int64)
            draws = graph.sample_neighbors(vertices, k, gen)
            votes = state[draws].sum(axis=1, dtype=np.int64)
            if k % 2 == 1:
                new_vals = (votes * 2 > k).astype(OPINION_DTYPE)
            else:
                new_vals = np.where(
                    votes * 2 > k,
                    np.uint8(BLUE),
                    np.where(votes * 2 < k, np.uint8(RED), state[vertices]),
                ).astype(OPINION_DTYPE)
            state[vertices] = new_vals
            done += m
        blue = int(state.sum())
        trajectory.append(blue)
        sweeps += 1
    converged = blue == 0 or blue == n
    return AsyncRunResult(
        converged=converged,
        winner=(BLUE if blue == n else RED) if converged else None,
        sweeps=sweeps,
        blue_trajectory=np.asarray(trajectory, dtype=np.int64),
    )
