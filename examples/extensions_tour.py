#!/usr/bin/env python
"""Tour of the extension models: noise, asynchrony, zealots.

The paper analyses the clean synchronous model; this example probes how
far its headline behaviour stretches, using the extension modules and
their mean-field predictions (experiments E13-E15 run these at scale):

1. noise bifurcation — sweep eta through the critical value 1/3 and
   watch the majority signal die exactly where the map says it must;
2. asynchrony — sequential updates measured in sweeps track synchronous
   rounds within a small constant;
3. zealots — how many stubborn blues does it take to beat a 60/40 red
   majority?

Run:  python examples/extensions_tour.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.dynamics import best_of_three
from repro.core.meanfield import best_of_k_map, map_derivative_at_half
from repro.core.opinions import random_opinions
from repro.extensions.async_dynamics import async_best_of_k_run
from repro.extensions.noisy_dynamics import (
    CRITICAL_NOISE,
    noisy_best_of_three_run,
    noisy_fixed_points,
)
from repro.extensions.zealots import zealot_best_of_three_run
from repro.graphs.implicit import CompleteGraph

N, DELTA = 20_000, 0.1


def noise_section(g) -> None:
    print(f"--- 1. noise bifurcation (critical eta* = {CRITICAL_NOISE:.4f}) ---")
    rows = []
    for i, eta in enumerate([0.0, 0.15, 0.30, 0.40, 0.60]):
        res = noisy_best_of_three_run(
            g, random_opinions(N, DELTA, rng=(1, i)), eta, seed=(2, i), rounds=80
        )
        pts = noisy_fixed_points(eta)
        rows.append(
            {
                "eta": eta,
                "stationary blue": res.stationary_blue_fraction,
                "predicted": pts[0] if eta < CRITICAL_NOISE else 0.5,
                "majority survives": res.majority_preserved and eta < CRITICAL_NOISE,
            }
        )
    print(format_table(
        ["eta", "stationary blue", "predicted", "majority survives"], rows
    ))
    print()


def async_section(g) -> None:
    print("--- 2. asynchronous vs synchronous ---")
    init = random_opinions(N, DELTA, rng=3)
    sync = best_of_three(g).run(init, seed=4, keep_final=False)
    asyn = async_best_of_k_run(g, init, seed=5)
    print(f"synchronous rounds : {sync.steps} (winner {'red' if sync.winner == 0 else 'blue'})")
    print(f"asynchronous sweeps: {asyn.sweeps} (winner {'red' if asyn.winner == 0 else 'blue'})")
    print(f"ratio              : {asyn.sweeps / sync.steps:.2f} (a constant; E14 sweeps sizes)")
    print()


def zealot_section(g) -> None:
    print("--- 3. zealot takeover ---")
    rows = []
    for i, pct in enumerate([1, 3, 5, 8, 12]):
        z = N * pct // 100
        res = zealot_best_of_three_run(
            g, random_opinions(N, DELTA, rng=(6, i)), z, seed=(7, i), max_rounds=400
        )
        rows.append(
            {
                "zealots %": pct,
                "outcome": res.ordinary_outcome,
                "rounds": res.rounds,
                "final blue count": int(res.blue_trajectory[-1]),
            }
        )
    print(format_table(["zealots %", "outcome", "rounds", "final blue count"], rows))
    print(
        "\n(The takeover sits near the mean-field basin boundary — E15 "
        "locates it precisely.)"
    )
    print()


def meanfield_section() -> None:
    print("--- mean-field amplification across k ---")
    for k in (1, 3, 5, 9, 15):
        drift = best_of_k_map(0.4, k)
        slope = map_derivative_at_half(k)
        print(
            f"  k={k:>2}: one round sends b=0.40 -> {drift:.4f}; "
            f"g'(1/2) = {slope:.3f} (~sqrt(2k/pi))"
        )


def main() -> None:
    g = CompleteGraph(N)
    noise_section(g)
    async_section(g)
    zealot_section(g)
    meanfield_section()


if __name__ == "__main__":
    main()
