#!/usr/bin/env python
"""Quickstart: Best-of-Three voting on a dense graph in ~30 lines.

Reproduces the paper's headline behaviour on one instance: i.i.d. initial
opinions with a small red bias reach all-red consensus in a handful of
rounds — doubly-logarithmic in n — and the library's Theorem 1 round
budget predicts the scale.

Run:  python examples/quickstart.py
"""

from repro import (
    CompleteGraph,
    best_of_three,
    check_hypotheses,
    random_opinions,
)


def main() -> None:
    n, delta = 100_000, 0.1

    # 1. A dense host.  CompleteGraph is implicit: no adjacency is stored,
    #    so n can be large.  Any repro.graphs.Graph works here.
    graph = CompleteGraph(n)

    # 2. The paper's initial condition: each vertex blue w.p. 1/2 - delta.
    opinions = random_opinions(n, delta=delta, rng=42)
    print(f"n = {n}, delta = {delta}")
    print(f"initial blue fraction: {opinions.mean():.4f}")

    # 3. Check the Theorem 1 hypotheses and get the predicted round budget.
    cert = check_hypotheses(graph, delta)
    print(f"hypotheses met: {cert.hypotheses_met}")
    print(f"predicted round budget: {cert.predicted_rounds}")

    # 4. Run the synchronous Best-of-Three dynamics to consensus.
    result = best_of_three(graph).run(opinions, seed=43)
    assert result.converged
    winner = "red" if result.winner == 0 else "blue"
    print(f"consensus: {winner} after {result.steps} rounds")
    print(f"blue counts per round: {result.blue_trajectory.tolist()}")
    print(
        f"within budget: {result.steps} <= {cert.predicted_rounds} -> "
        f"{result.steps <= cert.predicted_rounds}"
    )


if __name__ == "__main__":
    main()
