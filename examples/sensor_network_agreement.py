#!/usr/bin/env python
"""Domain scenario: binary agreement in an unreliable sensor swarm.

A swarm of sensors must agree on a binary reading (e.g. "threshold
exceeded") where each sensor's local measurement is correct only with
probability 1/2 + delta.  Gossiping three random peers per round and
taking the majority is exactly the Best-of-Three protocol; the paper's
theorem says the swarm converges to the *correct* global reading in
O(log log n) rounds — provided the communication graph is dense enough.

The script compares three deployment topologies (full mesh, rook-style
grid-with-buses, and a nearest-neighbour ring) and sweeps the sensor
accuracy delta, reporting when the swarm's answer can be trusted.

Run:  python examples/sensor_network_agreement.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.dynamics import best_of_three
from repro.core.opinions import RED, random_opinions
from repro.graphs.generators import ring_lattice
from repro.graphs.implicit import CompleteGraph, RookGraph
from repro.graphs.properties import is_dense_for_theorem1
from repro.util.rng import spawn_generators

TRIALS = 10
MAX_ROUNDS = 400


def agreement_rate(graph, delta, seed):
    """Fraction of trials where the swarm agrees on the correct value."""
    gens = spawn_generators(seed, 2 * TRIALS)
    dyn = best_of_three(graph)
    n = graph.num_vertices
    correct, rounds = 0, []
    for i in range(TRIALS):
        # RED encodes the ground-truth reading; each sensor errs w.p. 1/2-delta.
        init = random_opinions(n, delta, rng=gens[2 * i])
        res = dyn.run(init, seed=gens[2 * i + 1], max_steps=MAX_ROUNDS, keep_final=False)
        if res.converged and res.winner == RED:
            correct += 1
            rounds.append(res.steps)
    return correct, rounds


def main() -> None:
    n_side = 64
    topologies = [
        ("full mesh", CompleteGraph(n_side * n_side)),
        ("grid with row/col buses (rook)", RookGraph(n_side)),
        ("nearest-neighbour ring d=6", ring_lattice(n_side * n_side, 6)),
    ]
    deltas = [0.15, 0.05, 0.02]

    rows = []
    for t_idx, (name, graph) in enumerate(topologies):
        dense = is_dense_for_theorem1(graph)
        for d_idx, delta in enumerate(deltas):
            correct, rounds = agreement_rate(graph, delta, seed=(t_idx, d_idx))
            rows.append(
                {
                    "topology": name,
                    "dense (Thm1)": dense,
                    "sensor accuracy 1/2+delta": f"{0.5 + delta:.2f}",
                    "correct consensus": f"{correct}/{TRIALS}",
                    "mean rounds": float(np.mean(rounds)) if rounds else float("nan"),
                }
            )

    print(
        f"swarm size n = {n_side * n_side}, {TRIALS} trials per cell, "
        f"round cap {MAX_ROUNDS}\n"
    )
    print(
        format_table(
            [
                "topology",
                "dense (Thm1)",
                "sensor accuracy 1/2+delta",
                "correct consensus",
                "mean rounds",
            ],
            rows,
        )
    )
    print(
        "\nTakeaway: on the dense topologies the swarm amplifies even a "
        "52%-accurate sensor to a reliable global answer in ~10 gossip "
        "rounds; on the ring the same protocol stalls — density is what "
        "the Theorem 1 hypothesis buys (experiment E9 quantifies this)."
    )


if __name__ == "__main__":
    main()
