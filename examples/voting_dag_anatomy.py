#!/usr/bin/env python
"""Anatomy of the proof: voting-DAG, Sprinkling, and the tree lemmas.

Walks through the paper's dual objects on one concrete instance:

1. sample the random voting-DAG H(v0, T) of section 2 and inspect its
   levels and collisions;
2. apply the section 3 Sprinkling process and *verify the Proposition 3
   coupling* X <= X' on shared randomness;
3. compare the per-level blue marginals against the equation (2) iterates;
4. run the Lemma 6 ternary transform and check the blue-leaf inflation
   bounds — including the paper-vs-corrected bound distinction this
   reproduction uncovered (DESIGN.md section 3.1).

Run:  python examples/voting_dag_anatomy.py
"""

import numpy as np

from repro import CompleteGraph, VotingDAG, sprinkle
from repro.core.recursions import sprinkled_trajectory
from repro.core.ternary import dag_to_ternary_leaves
from repro.util.rng import spawn_generators

N, T, DELTA = 5000, 4, 0.1
ENSEMBLE = 400


def main() -> None:
    graph = CompleteGraph(N)
    dag = VotingDAG.sample(graph, root=0, T=T, rng=7)
    print(f"voting-DAG on K_{N}, T={T} levels, root=0")
    print(f"level sizes (leaves..root): {dag.level_sizes().tolist()}")
    print(f"collision levels: {dag.collision_levels().tolist()}")
    print(f"realised as a ternary tree: {dag.is_ternary_tree}")
    print()

    # --- Proposition 3 coupling on one realisation -----------------------
    coloring = dag.color_leaves_iid(DELTA, rng=8)
    sprinkled = sprinkle(dag)
    coupled = sprinkled.color(coloring.opinions[0])  # shared leaf colours
    dominated = all(
        bool((a <= b).all())
        for a, b in zip(coloring.opinions, coupled.opinions)
    )
    print(f"sprinkled DAG: {sprinkled.total_pseudo_leaves} blue pseudo-leaves")
    print(f"collision-free below T' : {sprinkled.is_collision_free_below()}")
    print(f"coupling X <= X' holds  : {dominated}")
    print(f"root colours (X, X')    : {coloring.root_opinion}, {coupled.root_opinion}")
    print()

    # --- Equation (2) marginals over an ensemble -------------------------
    bound = sprinkled_trajectory(0.5 - DELTA, T, graph.min_degree)
    blue = np.zeros(T + 1)
    total = np.zeros(T + 1)
    for gen in spawn_generators(9, ENSEMBLE):
        d = VotingDAG.sample(graph, root=0, T=T, rng=gen)
        c = sprinkle(d).color_leaves_iid(DELTA, rng=gen)
        for t in range(T + 1):
            blue[t] += c.opinions[t].sum()
            total[t] += c.opinions[t].size
    print("level   empirical P(blue)   eq.(2) bound p_t")
    for t in range(T + 1):
        print(f"  {t}        {blue[t] / total[t]:.4f}             {bound[t]:.4f}")
    print()

    # --- Lemma 6 transform ------------------------------------------------
    res = dag_to_ternary_leaves(dag, coloring.opinions[0])
    print("Lemma 6 ternary transform:")
    print(f"  root preserved        : {res.root_opinion == coloring.root_opinion}")
    print(f"  B0 (DAG blue leaves)  : {res.dag_blue_leaves}")
    print(f"  B' (tree blue leaves) : {res.tree_blue_leaves}")
    print(f"  C (collision levels)  : {res.collision_levels}; "
          f"paper bound B0*2^C = {res.lemma6_bound_paper} "
          f"(holds: {res.paper_bound_holds})")
    print(f"  D (collision draws)   : {res.collision_draws}; "
          f"corrected bound B0*2^D = {res.lemma6_bound} "
          f"(holds: {res.bound_holds})")


if __name__ == "__main__":
    main()
