#!/usr/bin/env python
"""Domain scenario: lightweight opinion polling in a social network.

The motivating application behind Best-of-k dynamics: each user
periodically polls three random contacts and adopts the majority view —
no counting infrastructure, no global state, constant memory per user.
This script models a heavy-tailed "social graph" (power-law degrees with
a dense floor), seeds a 55/45 opinion split, and asks the questions a
platform engineer would:

* does the network converge to the true majority, and how fast?
* does it still work when influencers (hubs) all start in the minority?
* what does the Theorem 1 certificate say about this topology?

Run:  python examples/social_polling.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.dynamics import best_of_three
from repro.core.opinions import RED, adversarial_opinions, random_opinions
from repro.core.theorem import check_hypotheses
from repro.graphs.generators import powerlaw_degree_graph
from repro.graphs.properties import degree_statistics
from repro.util.rng import spawn_generators

N, DELTA, TRIALS = 20_000, 0.05, 8


def ensemble(graph, make_init, seed):
    gens = spawn_generators(seed, 2 * TRIALS)
    dyn = best_of_three(graph)
    red, steps = 0, []
    for i in range(TRIALS):
        res = dyn.run(
            make_init(gens[2 * i]), seed=gens[2 * i + 1],
            max_steps=2000, keep_final=False,
        )
        if res.converged:
            steps.append(res.steps)
            red += int(res.winner == RED)
    return red, steps


def main() -> None:
    # A dense-floor power-law network: hubs with ~sqrt(n) contacts, nobody
    # below 32 contacts (the paper's minimum-degree hypothesis in action).
    graph = powerlaw_degree_graph(N, gamma=2.3, d_min=32, seed=1)
    stats = degree_statistics(graph)
    print(f"social graph: {stats}")

    cert = check_hypotheses(graph, DELTA)
    print(f"Theorem 1 hypotheses met: {cert.hypotheses_met} "
          f"(predicted budget {cert.predicted_rounds} rounds)")
    for note in cert.notes:
        print(f"  - {note}")
    print()

    n = graph.num_vertices
    blue_count = int((0.5 - DELTA) * n)
    scenarios = [
        (
            "uniform 45/55 split",
            lambda rng: random_opinions(n, DELTA, rng=rng),
        ),
        (
            "all hubs start minority",
            lambda rng: adversarial_opinions(graph, blue_count, "high_degree", rng=rng),
        ),
        (
            "minority packed in one community",
            lambda rng: adversarial_opinions(graph, blue_count, "cluster", rng=rng),
        ),
    ]
    rows = []
    for i, (name, make_init) in enumerate(scenarios):
        red, steps = ensemble(graph, make_init, seed=(2, i))
        rows.append(
            {
                "scenario": name,
                "majority wins": f"{red}/{TRIALS}",
                "mean rounds": float(np.mean(steps)) if steps else float("nan"),
                "max rounds": int(np.max(steps)) if steps else 0,
            }
        )
    print(format_table(
        ["scenario", "majority wins", "mean rounds", "max rounds"], rows
    ))
    print(
        "\nTakeaway: with a dense contact floor, three-contact polling "
        "finds the true majority in ~10 rounds even when every influencer "
        "starts on the minority side — the random-location robustness the "
        "paper's i.i.d. analysis quantifies (and E12 stress-tests)."
    )


if __name__ == "__main__":
    main()
