#!/usr/bin/env python
"""Scaling study: is consensus time really O(log log n)?

Sweeps n over four orders of magnitude on two dense families (complete
and rook), measures mean Best-of-Three consensus time over small
ensembles, fits the three growth laws, and prints the table plus an ASCII
plot — a miniature interactive version of experiment E1.

Run:  python examples/scaling_study.py
"""

import numpy as np

from repro.analysis.asciiplot import line_plot
from repro.analysis.experiments import run_consensus_ensemble
from repro.analysis.fitting import fit_growth_models
from repro.analysis.tables import format_table
from repro.core.recursions import consensus_time_bound
from repro.graphs.implicit import CompleteGraph, RookGraph

DELTA = 0.1
TRIALS = 30


def main() -> None:
    rows = []
    sizes, means = [], []
    for exp in (8, 10, 12, 14, 16, 18):
        n = 2**exp
        ens = run_consensus_ensemble(
            CompleteGraph(n), trials=TRIALS, delta=DELTA, seed=(1, exp)
        )
        budget = consensus_time_bound(n, n - 1, DELTA)
        rows.append(
            {
                "host": f"K_2^{exp}",
                "n": n,
                "mean T": ens.mean_steps,
                "max T": ens.max_steps,
                "red wins": f"{ens.red_wins}/{ens.trials}",
                "Thm1 budget": budget,
            }
        )
        sizes.append(n)
        means.append(ens.mean_steps)

    for m in (32, 64, 128, 256):
        g = RookGraph(m)
        ens = run_consensus_ensemble(g, trials=TRIALS, delta=DELTA, seed=(2, m))
        rows.append(
            {
                "host": f"Rook {m}x{m}",
                "n": g.num_vertices,
                "mean T": ens.mean_steps,
                "max T": ens.max_steps,
                "red wins": f"{ens.red_wins}/{ens.trials}",
                "Thm1 budget": consensus_time_bound(
                    g.num_vertices, g.min_degree, DELTA
                ),
            }
        )

    print(format_table(
        ["host", "n", "mean T", "max T", "red wins", "Thm1 budget"], rows
    ))
    print()

    fits = fit_growth_models(np.array(sizes, float), np.array(means))
    print("growth-law fits on the K_n series (lower rmse = better):")
    for name, fit in fits.items():
        print(
            f"  {name:>7}: T ~ {fit.slope:+.3f} * {name}(n) {fit.intercept:+.3f}"
            f"   rmse={fit.rmse:.3f}  R^2={fit.r_squared:.3f}"
        )
    best = min(fits.values(), key=lambda f: f.rmse)
    print(f"best-fitting model: {best.model}")
    print(
        "  (log and loglog are indistinguishable at these n — loglog "
        "varies by < 1 round across the sweep)"
    )
    print()
    # The sharp test of the theorem's shape: the equation (1) recursion's
    # hitting time of the 1/(2n) scale predicts T(n) with no free
    # parameters, and that hitting time is exactly loglog n + log(1/delta).
    from repro.core.recursions import ideal_hitting_time

    print("parameter-free recursion prediction vs measurement:")
    for n, t in zip(sizes, means):
        pred = ideal_hitting_time(0.5 - DELTA, 0.5 / n)
        print(f"  n = {n:>7}: measured {t:5.2f}   predicted {pred}")
    print()
    print(
        line_plot(
            {
                "measured": (np.log2(np.array(sizes, float)), np.array(means)),
                "loglog fit": (
                    np.log2(np.array(sizes, float)),
                    fits["loglog"].predict(np.array(sizes, float)),
                ),
            },
            title="mean consensus time vs log2 n (K_n, delta=0.1)",
            width=64,
            height=14,
        )
    )


if __name__ == "__main__":
    main()
