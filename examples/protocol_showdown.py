#!/usr/bin/env python
"""Protocol showdown: every consensus protocol from the paper's intro.

Same dense host, same biased initial condition; compare the voter model,
Best-of-2 (both tie rules), Best-of-3/5/7, q-colour plurality, and
deterministic local majority on speed and on *who wins* — the qualitative
landscape the paper's introduction surveys.

Run:  python examples/protocol_showdown.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.baselines.local_majority import local_majority_run
from repro.baselines.plurality import plurality_run, random_plurality_opinions
from repro.baselines.voter import voter_win_probability
from repro.core.dynamics import BestOfKDynamics, TieRule
from repro.core.opinions import RED, random_opinions
from repro.graphs.generators import erdos_renyi
from repro.util.rng import spawn_generators

N, DELTA, TRIALS = 1024, 0.1, 10


def run_protocol(name, graph, factory, max_steps, seed):
    gens = spawn_generators(seed, 2 * TRIALS)
    dyn = factory(graph)
    red, steps = 0, []
    for i in range(TRIALS):
        init = random_opinions(N, DELTA, rng=gens[2 * i])
        res = dyn.run(init, seed=gens[2 * i + 1], max_steps=max_steps, keep_final=False)
        if res.converged:
            steps.append(res.steps)
            red += int(res.winner == RED)
    return {
        "protocol": name,
        "red wins": f"{red}/{TRIALS}",
        "mean T": float(np.mean(steps)) if steps else float("nan"),
        "max T": int(np.max(steps)) if steps else 0,
        "amplifies majority": "yes" if red == TRIALS else "no",
    }


def main() -> None:
    graph = erdos_renyi(N, 0.25, seed=0)
    rows = [
        run_protocol("voter (k=1)", graph, lambda g: BestOfKDynamics(g, 1), 100_000, 1),
        run_protocol(
            "best-of-2 (keep)",
            graph,
            lambda g: BestOfKDynamics(g, 2, tie_rule=TieRule.KEEP_SELF),
            5_000,
            2,
        ),
        run_protocol(
            "best-of-2 (random)",
            graph,
            lambda g: BestOfKDynamics(g, 2, tie_rule=TieRule.RANDOM),
            100_000,
            3,
        ),
        run_protocol("best-of-3", graph, lambda g: BestOfKDynamics(g, 3), 5_000, 4),
        run_protocol("best-of-5", graph, lambda g: BestOfKDynamics(g, 5), 5_000, 5),
        run_protocol("best-of-7", graph, lambda g: BestOfKDynamics(g, 7), 5_000, 6),
    ]

    # Deterministic local majority.
    lm_steps, lm_red = [], 0
    for gen in spawn_generators(7, TRIALS):
        res = local_majority_run(graph, random_opinions(N, DELTA, rng=gen))
        if res.outcome == "consensus":
            lm_steps.append(res.steps)
            lm_red += int(res.winner == RED)
    rows.append(
        {
            "protocol": "local majority (det.)",
            "red wins": f"{lm_red}/{TRIALS}",
            "mean T": float(np.mean(lm_steps)) if lm_steps else float("nan"),
            "max T": int(np.max(lm_steps)) if lm_steps else 0,
            "amplifies majority": "yes" if lm_red == TRIALS else "no",
        }
    )

    # Three-colour plurality ([2]'s setting).
    pl_steps, pl_wins = [], 0
    for gen in spawn_generators(8, TRIALS):
        init = random_plurality_opinions(N, np.array([0.45, 0.3, 0.25]), rng=gen)
        res = plurality_run(graph, init, seed=gen)
        if res.converged:
            pl_steps.append(res.steps)
            pl_wins += int(res.winner == 0)
    rows.append(
        {
            "protocol": "plurality q=3 (bo3)",
            "red wins": f"{pl_wins}/{TRIALS} (colour 0)",
            "mean T": float(np.mean(pl_steps)) if pl_steps else float("nan"),
            "max T": int(np.max(pl_steps)) if pl_steps else 0,
            "amplifies majority": "yes" if pl_wins == TRIALS else "mostly",
        }
    )

    print(f"host: G({N}, 0.25), delta = {DELTA}, {TRIALS} trials/protocol\n")
    print(format_table(
        ["protocol", "red wins", "mean T", "max T", "amplifies majority"], rows
    ))

    init = random_opinions(N, DELTA, rng=99)
    print(
        f"\nvoter-model exact win law for this draw: "
        f"P(red) = d(R0)/d(V) = {voter_win_probability(graph, init):.3f} "
        "(no amplification — the failing Best-of-3 fixes)"
    )


if __name__ == "__main__":
    main()
