"""Benchmark E8: introduction's Best-of-k / voter / local-majority comparison.

Regenerates the E8 experiment table (DESIGN.md section 3) in quick mode
and asserts its SHAPE MATCH verdict; wall time is the reported metric.
Run the full-size sweep via ``python -m repro.harness.report --full``.
"""

from conftest import run_and_check


def test_e08_protocol_comparison(benchmark):
    result = run_and_check("E8", benchmark)
    assert result.experiment_id == "E8"
