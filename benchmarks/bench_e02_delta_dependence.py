"""Benchmark E2: Theorem 1 additive O(log 1/delta) dependence at fixed n.

Regenerates the E2 experiment table (DESIGN.md section 3) in quick mode
and asserts its SHAPE MATCH verdict; wall time is the reported metric.
Run the full-size sweep via ``python -m repro.harness.report --full``.
"""

from conftest import run_and_check


def test_e02_delta_dependence(benchmark):
    result = run_and_check("E2", benchmark)
    assert result.experiment_id == "E2"
