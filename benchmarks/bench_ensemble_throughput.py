"""Ensemble-engine throughput: batched vs loop, count-chain vs dense.

Measures replicas/sec for the two DESIGN.md §2.3 engine ablations:

* **batched vs sequential loop** — the ``(R, n)``-matrix engine against
  the old per-trial Python loop around ``BestOfKDynamics.run`` (same
  protocol, same initial-condition law);
* **count-chain vs dense** — the exact ``K_n`` blue-count chain against
  the per-vertex batched simulation, including a Theorem 1 verification
  at ``n = 10⁷`` that is simply out of reach for the dense path.

Run standalone for the full acceptance-size report::

    PYTHONPATH=src python benchmarks/bench_ensemble_throughput.py

or via the smoke runner (writes a ``BENCH_*.json`` snapshot)::

    PYTHONPATH=src python benchmarks/run_bench.py

The pytest-benchmark entries at the bottom keep these paths in the timed
suite (`pytest benchmarks/ --benchmark-only`) at small sizes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.dynamics import BestOfKDynamics
from repro.core.ensemble import run_ensemble
from repro.core.opinions import random_opinions
from repro.core.theorem import verify_theorem1
from repro.graphs.implicit import CompleteGraph, RookGraph
from repro.util.rng import spawn_generators

__all__ = [
    "sequential_loop",
    "bench_batched_vs_loop",
    "bench_count_chain_vs_dense",
    "bench_count_chain_theorem1",
]


def sequential_loop(graph, *, trials, delta, seed, max_steps=500, k=3):
    """The pre-engine baseline: one ``BestOfKDynamics.run`` per trial."""
    dyn = BestOfKDynamics(graph, k=k)
    n = graph.num_vertices
    gens = spawn_generators(seed, 2 * trials)
    converged = 0
    for i in range(trials):
        init = random_opinions(n, delta, rng=gens[2 * i])
        res = dyn.run(
            init, seed=gens[2 * i + 1], max_steps=max_steps, keep_final=False
        )
        converged += int(res.converged)
    return converged


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def bench_batched_vs_loop(
    *, n=2**16, replicas=100, delta=0.1, seed=0, max_steps=500, host="complete"
):
    """Replicas/sec: engine (auto + forced-dense) vs the sequential loop.

    On the complete-graph host the engine's ``auto`` route is the exact
    count chain — the headline speedup — while ``batched`` isolates the
    dense-path gain (shared rounds + compaction + int32 gathers).
    """
    graph = CompleteGraph(n) if host == "complete" else RookGraph(int(np.sqrt(n)))
    n = graph.num_vertices

    t_loop, _ = _timed(
        lambda: sequential_loop(
            graph, trials=replicas, delta=delta, seed=seed, max_steps=max_steps
        )
    )
    t_batched, res_b = _timed(
        lambda: run_ensemble(
            graph, replicas=replicas, delta=delta, seed=seed,
            max_steps=max_steps, record_trajectories=False, method="batched",
        )
    )
    t_auto, res_a = _timed(
        lambda: run_ensemble(
            graph, replicas=replicas, delta=delta, seed=seed,
            max_steps=max_steps, record_trajectories=False, method="auto",
        )
    )
    return {
        "host": type(graph).__name__,
        "n": n,
        "replicas": replicas,
        "delta": delta,
        "loop_seconds": t_loop,
        "loop_replicas_per_sec": replicas / t_loop,
        "batched_seconds": t_batched,
        "batched_replicas_per_sec": replicas / t_batched,
        "batched_speedup_vs_loop": t_loop / t_batched,
        "engine_auto_method": res_a.method,
        "engine_auto_seconds": t_auto,
        "engine_auto_replicas_per_sec": replicas / t_auto,
        "engine_auto_speedup_vs_loop": t_loop / t_auto,
        "all_converged": bool(res_b.converged.all() and res_a.converged.all()),
    }


def bench_count_chain_vs_dense(*, n=2**16, replicas=100, delta=0.1, seed=0):
    """Replicas/sec: the exact count chain vs the dense K_n simulation."""
    graph = CompleteGraph(n)
    t_dense, _ = _timed(
        lambda: run_ensemble(
            graph, replicas=replicas, delta=delta, seed=seed,
            max_steps=500, record_trajectories=False, method="batched",
        )
    )
    t_chain, res = _timed(
        lambda: run_ensemble(
            graph, replicas=replicas, delta=delta, seed=seed,
            max_steps=500, record_trajectories=False, method="count_chain",
        )
    )
    return {
        "n": n,
        "replicas": replicas,
        "dense_seconds": t_dense,
        "dense_replicas_per_sec": replicas / t_dense,
        "count_chain_seconds": t_chain,
        "count_chain_replicas_per_sec": replicas / t_chain,
        "count_chain_speedup_vs_dense": t_dense / t_chain,
        "mean_steps": float(res.converged_steps.mean()),
    }


def bench_count_chain_theorem1(*, n=10**7, trials=50, delta=0.1, seed=0):
    """A full Theorem 1 verification at count-chain-only scale."""
    graph = CompleteGraph(n)
    t, verdict = _timed(
        lambda: verify_theorem1(graph, delta, trials=trials, seed=seed)
    )
    return {
        "n": n,
        "trials": trials,
        "delta": delta,
        "seconds": t,
        "replicas_per_sec": trials / t,
        "red_wins": verdict.red_wins,
        "converged": verdict.converged,
        "mean_steps": verdict.mean_steps,
        "max_steps": verdict.max_steps,
    }


def full_report():
    """The acceptance-size measurements (ISSUE 1 criteria)."""
    return {
        "batched_vs_loop_Kn_2e16": bench_batched_vs_loop(
            n=2**16, replicas=100, delta=0.1, seed=0
        ),
        "batched_vs_loop_rook": bench_batched_vs_loop(
            n=2**14, replicas=100, delta=0.1, seed=0, host="rook"
        ),
        "count_chain_vs_dense_Kn_2e16": bench_count_chain_vs_dense(
            n=2**16, replicas=100, delta=0.1, seed=0
        ),
        "count_chain_theorem1_1e7": bench_count_chain_theorem1(
            n=10**7, trials=50, delta=0.1, seed=0
        ),
    }


def smoke_report():
    """Small sizes for CI smoke runs (same shape as :func:`full_report`)."""
    return {
        "batched_vs_loop_Kn_2e12": bench_batched_vs_loop(
            n=2**12, replicas=50, delta=0.1, seed=0
        ),
        "batched_vs_loop_rook": bench_batched_vs_loop(
            n=2**10, replicas=50, delta=0.1, seed=0, host="rook"
        ),
        "count_chain_vs_dense_Kn_2e12": bench_count_chain_vs_dense(
            n=2**12, replicas=50, delta=0.1, seed=0
        ),
        "count_chain_theorem1_1e6": bench_count_chain_theorem1(
            n=10**6, trials=20, delta=0.1, seed=0
        ),
    }


# ----------------------------------------------------------------------
# pytest-benchmark entries (small sizes; the suite stays fast)
# ----------------------------------------------------------------------


def test_engine_batched_round_kn(benchmark):
    """One batched Best-of-3 round, 50 replicas on K_{2^14}."""
    from repro.core.ensemble import step_best_of_k_batch

    n, reps = 2**14, 50
    g = CompleteGraph(n)
    batch = np.stack([random_opinions(n, 0.1, rng=i) for i in range(reps)])
    rng = np.random.default_rng(0)
    out = np.empty_like(batch)
    benchmark(lambda: step_best_of_k_batch(g, batch, 3, rng, out=out))


def test_engine_count_chain_round(benchmark):
    """One count-chain round for 10^4 replicas on K_{10^6}."""
    from repro.core.ensemble import count_chain_step

    n = 10**6
    rng = np.random.default_rng(1)
    B = rng.integers(1, n, size=10**4)
    benchmark(lambda: count_chain_step(B, n, 3, rng))


def test_engine_full_ensemble_auto(benchmark):
    """A 100-replica K_{2^14} consensus ensemble through the auto route."""
    g = CompleteGraph(2**14)
    benchmark(
        lambda: run_ensemble(
            g, replicas=100, delta=0.1, seed=2, record_trajectories=False
        )
    )


def _print(title, stats):
    print(f"\n## {title}")
    for key, val in stats.items():
        print(f"  {key:32s} {val}")


if __name__ == "__main__":
    report = full_report()
    for name, stats in report.items():
        _print(name, stats)
    kn = report["batched_vs_loop_Kn_2e16"]
    t1 = report["count_chain_theorem1_1e7"]
    print(
        f"\nacceptance: engine-vs-loop speedup at K_n n=2^16, R=100: "
        f"{kn['engine_auto_speedup_vs_loop']:.1f}x "
        f"(criterion: >= 10x); Theorem 1 at n=10^7: {t1['seconds']:.2f}s "
        "(criterion: seconds)"
    )
