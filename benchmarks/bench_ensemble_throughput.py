"""Ensemble-engine throughput: batched vs loop, count chains vs dense.

Measures replicas/sec for the DESIGN.md §2.3/§2.5 engine ablations:

* **batched vs sequential loop** — the ``(R, n)``-matrix engine against
  the old per-trial Python loop around ``BestOfKDynamics.run`` (same
  protocol, same initial-condition law);
* **count chains vs dense** — the exact count-chain kernels (``K_n``,
  complete multipartite, two-clique bridge) against the per-vertex
  batched simulation, including Theorem 1 verifications at ``n = 10⁷``
  (exact binomials) and ``n = 10¹⁰`` (the Gaussian regime) that are
  simply out of reach for the dense path;
* **protocol count chains vs legacy loops** — the Protocol layer's
  noisy/zealot count-chain executions (DESIGN.md §2.6) against the
  historical one-trial-at-a-time extension runners they replaced (the
  ISSUE 5 acceptance guard: noisy ≥ 50× at ``n = 2¹⁴``);
* **flat-take gather** — the dense path's ``np.take``-over-row-offsets
  gather against the fancy-index broadcast it replaced;
* **shared host store** — a warm ``jobs=2`` sweep pool attaching to the
  parent's memory-mapped CSR arrays versus regenerating the quenched
  host per worker (rebuild counts reported).

Run standalone for the full acceptance-size report, or with ``--quick``
(CI) for the smoke sizes; ``--out PATH`` writes the JSON snapshot::

    PYTHONPATH=src python benchmarks/bench_ensemble_throughput.py
    PYTHONPATH=src python benchmarks/bench_ensemble_throughput.py \\
        --quick --out /tmp/BENCH_ensemble_throughput.json

(``benchmarks/run_bench.py`` wraps the same reports and owns the
committed ``BENCH_ensemble_throughput.json``.)

The pytest-benchmark entries at the bottom keep these paths in the timed
suite (`pytest benchmarks/ --benchmark-only`) at small sizes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.dynamics import BestOfKDynamics
from repro.core.ensemble import run_ensemble, step_best_of_k_batch
from repro.core.opinions import random_opinions
from repro.core.theorem import verify_theorem1
from repro.graphs.generators import two_clique_bridge
from repro.graphs.implicit import (
    CompleteGraph,
    CompleteMultipartiteGraph,
    RookGraph,
)
from repro.util.rng import spawn_generators

__all__ = [
    "sequential_loop",
    "bench_batched_vs_loop",
    "bench_count_chain_vs_dense",
    "bench_count_chain_theorem1",
    "bench_kernel_vs_dense",
    "bench_gaussian_theorem1",
    "bench_noisy_count_chain_vs_loop",
    "bench_zealot_count_chain_vs_loop",
    "bench_dense_gather",
    "bench_dense_scaling",
    "bench_host_store",
]


def sequential_loop(graph, *, trials, delta, seed, max_steps=500, k=3):
    """The pre-engine baseline: one ``BestOfKDynamics.run`` per trial."""
    dyn = BestOfKDynamics(graph, k=k)
    n = graph.num_vertices
    gens = spawn_generators(seed, 2 * trials)
    converged = 0
    for i in range(trials):
        init = random_opinions(n, delta, rng=gens[2 * i])
        res = dyn.run(
            init, seed=gens[2 * i + 1], max_steps=max_steps, keep_final=False
        )
        converged += int(res.converged)
    return converged


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def bench_batched_vs_loop(
    *, n=2**16, replicas=100, delta=0.1, seed=0, max_steps=500, host="complete"
):
    """Replicas/sec: engine (auto + forced-dense) vs the sequential loop.

    On the complete-graph host the engine's ``auto`` route is the exact
    count chain — the headline speedup — while ``batched`` isolates the
    dense-path gain (shared rounds + compaction + int32 gathers).
    """
    graph = CompleteGraph(n) if host == "complete" else RookGraph(int(np.sqrt(n)))
    n = graph.num_vertices

    t_loop, _ = _timed(
        lambda: sequential_loop(
            graph, trials=replicas, delta=delta, seed=seed, max_steps=max_steps
        )
    )
    t_batched, res_b = _timed(
        lambda: run_ensemble(
            graph, replicas=replicas, delta=delta, seed=seed,
            max_steps=max_steps, record_trajectories=False, method="batched",
        )
    )
    t_auto, res_a = _timed(
        lambda: run_ensemble(
            graph, replicas=replicas, delta=delta, seed=seed,
            max_steps=max_steps, record_trajectories=False, method="auto",
        )
    )
    return {
        "host": type(graph).__name__,
        "n": n,
        "replicas": replicas,
        "delta": delta,
        "loop_seconds": t_loop,
        "loop_replicas_per_sec": replicas / t_loop,
        "batched_seconds": t_batched,
        "batched_replicas_per_sec": replicas / t_batched,
        "batched_speedup_vs_loop": t_loop / t_batched,
        "engine_auto_method": res_a.method,
        "engine_auto_seconds": t_auto,
        "engine_auto_replicas_per_sec": replicas / t_auto,
        "engine_auto_speedup_vs_loop": t_loop / t_auto,
        "all_converged": bool(res_b.converged.all() and res_a.converged.all()),
    }


def bench_count_chain_vs_dense(*, n=2**16, replicas=100, delta=0.1, seed=0):
    """Replicas/sec: the exact count chain vs the dense K_n simulation."""
    graph = CompleteGraph(n)
    t_dense, _ = _timed(
        lambda: run_ensemble(
            graph, replicas=replicas, delta=delta, seed=seed,
            max_steps=500, record_trajectories=False, method="batched",
        )
    )
    t_chain, res = _timed(
        lambda: run_ensemble(
            graph, replicas=replicas, delta=delta, seed=seed,
            max_steps=500, record_trajectories=False, method="count_chain",
        )
    )
    return {
        "n": n,
        "replicas": replicas,
        "dense_seconds": t_dense,
        "dense_replicas_per_sec": replicas / t_dense,
        "count_chain_seconds": t_chain,
        "count_chain_replicas_per_sec": replicas / t_chain,
        "count_chain_speedup_vs_dense": t_dense / t_chain,
        "mean_steps": float(res.converged_steps.mean()),
    }


def bench_count_chain_theorem1(*, n=10**7, trials=50, delta=0.1, seed=0):
    """A full Theorem 1 verification at count-chain-only scale."""
    graph = CompleteGraph(n)
    t, verdict = _timed(
        lambda: verify_theorem1(graph, delta, trials=trials, seed=seed)
    )
    return {
        "n": n,
        "trials": trials,
        "delta": delta,
        "seconds": t,
        "replicas_per_sec": trials / t,
        "red_wins": verdict.red_wins,
        "converged": verdict.converged,
        "mean_steps": verdict.mean_steps,
        "max_steps": verdict.max_steps,
    }


def bench_kernel_vs_dense(*, host, replicas=100, delta=0.1, seed=0, max_steps=500):
    """Replicas/sec: a host's exact count-chain kernel vs its dense path.

    The generalised analogue of :func:`bench_count_chain_vs_dense` for
    the non-``K_n`` kernel hosts (complete multipartite, two-clique
    bridge) — the PR 4 headline: these families used to be stuck on the
    bandwidth-bound dense path.
    """
    t_dense, res_d = _timed(
        lambda: run_ensemble(
            host, replicas=replicas, delta=delta, seed=seed,
            max_steps=max_steps, record_trajectories=False, method="batched",
        )
    )
    t_chain, res_c = _timed(
        lambda: run_ensemble(
            host, replicas=replicas, delta=delta, seed=seed,
            max_steps=max_steps, record_trajectories=False,
            method="count_chain",
        )
    )
    return {
        "host": type(host).__name__,
        "kernel": type(host.count_chain_kernel()).__name__,
        "n": host.num_vertices,
        "replicas": replicas,
        "delta": delta,
        "dense_seconds": t_dense,
        "dense_replicas_per_sec": replicas / t_dense,
        "count_chain_seconds": t_chain,
        "count_chain_replicas_per_sec": replicas / t_chain,
        "count_chain_speedup_vs_dense": t_dense / t_chain,
        "dense_converged": res_d.converged_count,
        "count_chain_converged": res_c.converged_count,
    }


def bench_gaussian_theorem1(*, n=10**10, trials=30, delta=0.1, seed=0):
    """A Theorem 1 verification beyond the exact-binomial range.

    At ``n = 10¹⁰`` the chain's counts exceed 2³¹, so every round runs
    through the Gaussian/Poisson regime of
    :func:`repro.core.kernels.binomial_draw` — the whole verification is
    O(R) per round and finishes in milliseconds.
    """
    graph = CompleteGraph(n)
    t, verdict = _timed(
        lambda: verify_theorem1(graph, delta, trials=trials, seed=seed)
    )
    return {
        "n": n,
        "trials": trials,
        "delta": delta,
        "regime": "gaussian",
        "seconds": t,
        "replicas_per_sec": trials / t,
        "red_wins": verdict.red_wins,
        "converged": verdict.converged,
        "mean_steps": verdict.mean_steps,
        "max_steps": verdict.max_steps,
    }


def bench_noisy_count_chain_vs_loop(
    *, n=2**14, trials=50, delta=0.1, eta=0.2, rounds=80, seed=0
):
    """Replicas/sec: the noisy count chain vs the legacy per-trial loop.

    The legacy side is :func:`repro.extensions.noisy_dynamics.
    noisy_best_of_three_run` driven one trial at a time with the
    historical stream layout; the engine side is
    ``run_ensemble(protocol=NoisyBestOfK(eta))`` on the same complete
    host, which routes to the exact η-mixed count chain.  The ISSUE 5
    acceptance guard holds this at ≥ 50× for ``n = 2¹⁴``.
    """
    from repro.core.protocols import NoisyBestOfK
    from repro.extensions.noisy_dynamics import noisy_best_of_three_run

    graph = CompleteGraph(n)

    def loop():
        gens = spawn_generators(seed, 2 * trials)
        out = []
        for j in range(trials):
            init = random_opinions(n, delta, rng=gens[2 * j])
            out.append(
                noisy_best_of_three_run(
                    graph, init, eta, seed=gens[2 * j + 1], rounds=rounds
                ).stationary_blue_fraction
            )
        return out

    proto = NoisyBestOfK(eta)
    t_loop, _ = _timed(loop)
    t_chain, res = _timed(
        lambda: run_ensemble(
            graph, protocol=proto, replicas=trials, delta=delta, seed=seed,
            max_steps=rounds,
        )
    )
    return {
        "host": "CompleteGraph",
        "n": n,
        "trials": trials,
        "eta": eta,
        "rounds": rounds,
        "engine_method": res.method,
        "loop_seconds": t_loop,
        "loop_replicas_per_sec": trials / t_loop,
        "count_chain_seconds": t_chain,
        "count_chain_replicas_per_sec": trials / t_chain,
        "count_chain_speedup_vs_loop": t_loop / t_chain,
        "mean_stationary": float(
            np.mean(proto.summarize(res)["stationary_blue_fraction"])
        ),
    }


def bench_zealot_count_chain_vs_loop(
    *, n=2**14, trials=50, delta=0.1, zealots=None, max_rounds=300, seed=0
):
    """Replicas/sec: the pinned-slot zealot chain vs the legacy loop.

    Legacy side: :func:`repro.extensions.zealots.zealot_best_of_three_run`
    per trial; engine side: ``run_ensemble(protocol=ZealotBestOfK(z))``
    with zealots as pinned count-chain slots.  The default ``z`` sits
    above the takeover threshold, so both sides absorb at all-blue in a
    handful of rounds and the comparison times whole runs.
    """
    from repro.core.protocols import ZealotBestOfK
    from repro.extensions.zealots import zealot_best_of_three_run

    graph = CompleteGraph(n)
    z = int(0.08 * n) if zealots is None else zealots

    def loop():
        gens = spawn_generators(seed, 2 * trials)
        out = 0
        for j in range(trials):
            init = random_opinions(n, delta, rng=gens[2 * j])
            res = zealot_best_of_three_run(
                graph, init, z, seed=gens[2 * j + 1], max_rounds=max_rounds
            )
            out += res.ordinary_outcome == "all_blue"
        return out

    t_loop, _ = _timed(loop)
    t_chain, res = _timed(
        lambda: run_ensemble(
            graph,
            protocol=ZealotBestOfK(z),
            replicas=trials,
            delta=delta,
            seed=seed,
            max_steps=max_rounds,
            record_trajectories=False,
        )
    )
    return {
        "host": "CompleteGraph",
        "n": n,
        "trials": trials,
        "zealots": z,
        "engine_method": res.method,
        "loop_seconds": t_loop,
        "loop_replicas_per_sec": trials / t_loop,
        "count_chain_seconds": t_chain,
        "count_chain_replicas_per_sec": trials / t_chain,
        "count_chain_speedup_vs_loop": t_loop / t_chain,
        "engine_converged": res.converged_count,
    }


def bench_dense_gather(*, n=2**14, replicas=50, k=3, rounds=20, seed=0):
    """The dense path's flat ``np.take`` gather vs the old fancy-index.

    Isolates the stage the satellite task replaced — everything between
    the neighbour draw and the tie handling — on one presampled
    ``(R, n, k)`` id tensor: the old advanced-indexing broadcast
    ``opinions[arange(R)[:, None, None], samples]`` plus allocating
    reductions, against the in-place row-offset shift + flat ``np.take``
    + preallocated reductions the engine now runs.  (Whole rounds are
    sampling-bound, so the end-to-end engine delta is smaller than this
    stage-level ratio; both are recorded in the snapshot via the
    ``batched_*`` entries.)
    """
    graph = RookGraph(int(np.sqrt(n)))
    n = graph.num_vertices
    batch = np.stack(
        [random_opinions(n, 0.1, rng=(seed, i)) for i in range(replicas)]
    )
    half = k // 2
    rng = np.random.default_rng(seed)
    samples = graph.sample_neighbors_batch(graph.vertex_ids, k, rng, replicas)
    flat_ops = batch.reshape(-1)
    offsets = (np.arange(replicas, dtype=samples.dtype) * n)[:, None, None]
    idx_buf = np.empty_like(samples)
    gathered = np.empty((replicas, n, k), dtype=batch.dtype)
    votes = np.empty((replicas, n), dtype=np.uint8)
    out = np.empty_like(batch)

    def legacy_gather():
        for _ in range(rounds):
            g = batch[np.arange(replicas)[:, None, None], samples]
            v = g.sum(axis=2, dtype=np.uint8)
            (v > half)

    def flat_take_gather():
        for _ in range(rounds):
            np.copyto(idx_buf, samples)
            np.add(idx_buf, offsets, out=idx_buf)
            np.take(flat_ops, idx_buf, out=gathered)
            np.sum(gathered, axis=2, dtype=np.uint8, out=votes)
            np.greater(votes, half, out=out)

    legacy_gather()  # warm both paths before timing
    flat_take_gather()
    t_legacy, _ = _timed(legacy_gather)
    t_flat, _ = _timed(flat_take_gather)
    return {
        "host": "RookGraph",
        "n": n,
        "replicas": replicas,
        "k": k,
        "rounds": rounds,
        "fancy_index_seconds": t_legacy,
        "flat_take_seconds": t_flat,
        "flat_take_speedup": t_legacy / t_flat,
    }


def bench_dense_scaling(
    *, n=2**14, replicas=64, delta=0.0, rounds=25, seed=0,
    thread_counts=(1, 2, 4),
):
    """Dense-path scaling: serial vs threaded blocks vs the legacy loop.

    The ISSUE 10 acceptance scenario, on the host family where the dense
    path was the bottleneck (rook — the ``batched_vs_loop_rook`` 0.92×
    regression).  ``delta=0`` starts every replica balanced so almost
    nothing absorbs inside the round budget: each engine advances
    ``replicas × rounds`` near-identical rounds, which makes the
    throughputs directly comparable.  Records, per thread count, whole
    runs through ``run_ensemble(threads=t)``; the serial layout
    (``threads=0``), the pre-engine sequential loop, and the ``auto``
    policy's routing are the baselines.  ``threaded_bit_identical``
    asserts the layout contract (worker count never changes results) in
    the snapshot itself, and ``kernel`` records whether the fused
    compiled kernel (numba) or the numpy reference path ran.

    CI's ``dense-scaling`` job guards this entry: best-threaded ≥ 2× the
    serial dense path on the 4-core runner (≥ 4× when ``kernel`` is
    ``compiled``), and ``auto`` at least as fast as the legacy loop.
    """
    from repro.core.dense import dense_kernel_name

    graph = RookGraph(int(np.sqrt(n)))
    n = graph.num_vertices
    kw = dict(
        replicas=replicas, delta=delta, seed=seed, max_steps=rounds,
        record_trajectories=False,
    )
    t_loop, _ = _timed(
        lambda: sequential_loop(
            graph, trials=replicas, delta=delta, seed=seed, max_steps=rounds
        )
    )
    t_serial, _ = _timed(
        lambda: run_ensemble(graph, method="batched", threads=0, **kw)
    )
    per_thread: dict[str, dict] = {}
    runs: dict[int, object] = {}
    for t in thread_counts:
        t_run, res = _timed(
            lambda t=t: run_ensemble(graph, method="batched", threads=t, **kw)
        )
        runs[t] = res
        per_thread[str(t)] = {
            "seconds": t_run,
            "replicas_per_sec": replicas / t_run,
            "speedup_vs_serial": t_serial / t_run,
            "speedup_vs_loop": t_loop / t_run,
        }
    base = runs[thread_counts[0]]
    bit_identical = all(
        np.array_equal(base.steps, runs[t].steps)
        and np.array_equal(base.final_totals, runs[t].final_totals)
        for t in thread_counts[1:]
    )
    t_auto, res_auto = _timed(lambda: run_ensemble(graph, **kw))
    best = max(thread_counts, key=lambda t: per_thread[str(t)]["replicas_per_sec"])
    return {
        "host": "RookGraph",
        "n": n,
        "replicas": replicas,
        "rounds": rounds,
        "kernel": dense_kernel_name(),
        "loop_seconds": t_loop,
        "loop_replicas_per_sec": replicas / t_loop,
        "serial_seconds": t_serial,
        "serial_replicas_per_sec": replicas / t_serial,
        "threads": per_thread,
        "threaded_bit_identical": bit_identical,
        "best_threads": best,
        "best_speedup_vs_serial": per_thread[str(best)]["speedup_vs_serial"],
        "best_speedup_vs_loop": per_thread[str(best)]["speedup_vs_loop"],
        "auto_method": res_auto.method,
        "auto_threads": res_auto.threads,
        "auto_seconds": t_auto,
        "auto_replicas_per_sec": replicas / t_auto,
        "auto_speedup_vs_loop": t_loop / t_auto,
    }


def bench_host_store(*, n=2048, p=0.1, points=6, trials=4, jobs=2, seed=0):
    """Warm-pool sweep: shared host store vs per-worker regeneration.

    Runs the same quenched-ER grid twice with ``jobs`` workers — first
    with host sharing disabled (every worker regenerates the graph),
    then with the shared memory-mapped store (workers attach zero-copy).
    The rebuild counts are the acceptance metric: with the store, worker
    processes build **zero** quenched hosts.
    """
    from repro.sweeps import (
        HostSpec,
        InitSpec,
        Point,
        ProtocolSpec,
        SweepSpec,
        run_sweep,
    )

    spec = SweepSpec(
        name="bench_host_store",
        points=tuple(
            Point(
                host=HostSpec.of("erdos_renyi", n=n, p=p, seed=(seed, 77)),
                protocol=ProtocolSpec.best_of(3),
                init=InitSpec.iid(0.1),
                trials=trials,
                max_steps=500,
                seed=(seed, i),
            )
            for i in range(points)
        ),
    )
    # Order matters: the no-store run goes first so the parent process
    # has not built (and therefore cannot fork-inherit) the host yet —
    # its workers must regenerate, which is exactly the cost the store
    # removes.
    t_rebuild, no_store = _timed(
        lambda: run_sweep(spec, jobs=jobs, share_hosts=False)
    )
    t_attach, with_store = _timed(lambda: run_sweep(spec, jobs=jobs))
    return {
        "host": f"erdos_renyi(n={n}, p={p})",
        "points": points,
        "jobs": jobs,
        "no_store_seconds": t_rebuild,
        "no_store_worker_rebuilds": no_store.stats.host_builds,
        "store_seconds": t_attach,
        "store_hosts_published": with_store.stats.hosts_published,
        "store_worker_rebuilds": with_store.stats.host_builds,
        "store_worker_attaches": with_store.stats.host_attaches,
    }


def full_report():
    """The acceptance-size measurements (ISSUE 1 criteria)."""
    return {
        "batched_vs_loop_Kn_2e16": bench_batched_vs_loop(
            n=2**16, replicas=100, delta=0.1, seed=0
        ),
        "batched_vs_loop_rook": bench_batched_vs_loop(
            n=2**14, replicas=100, delta=0.1, seed=0, host="rook"
        ),
        "count_chain_vs_dense_Kn_2e16": bench_count_chain_vs_dense(
            n=2**16, replicas=100, delta=0.1, seed=0
        ),
        "count_chain_vs_dense_multipartite": bench_kernel_vs_dense(
            host=CompleteMultipartiteGraph([2**13] * 8), replicas=100, seed=0
        ),
        "count_chain_vs_dense_bridge": bench_kernel_vs_dense(
            host=two_clique_bridge(2**13), replicas=100, seed=0
        ),
        "count_chain_theorem1_1e7": bench_count_chain_theorem1(
            n=10**7, trials=50, delta=0.1, seed=0
        ),
        "gaussian_theorem1_1e10": bench_gaussian_theorem1(
            n=10**10, trials=30, delta=0.1, seed=0
        ),
        "noisy_count_chain_vs_loop": bench_noisy_count_chain_vs_loop(
            n=2**14, trials=50, eta=0.2, rounds=80, seed=0
        ),
        "zealot_count_chain_vs_loop": bench_zealot_count_chain_vs_loop(
            n=2**14, trials=50, seed=0
        ),
        "dense_gather_flat_take": bench_dense_gather(
            n=2**14, replicas=50, rounds=20, seed=0
        ),
        # replicas=96 puts R*n*k past DENSE_AUTO_THREAD_MIN_SAMPLES, so
        # the snapshot records the auto policy actually routing to the
        # threaded layout (auto_threads >= 1).
        "dense_scaling_rook": bench_dense_scaling(
            n=2**14, replicas=96, delta=0.0, rounds=25, seed=0,
            thread_counts=(1, 2, 4),
        ),
        "sweep_host_store": bench_host_store(
            n=2048, p=0.1, points=6, jobs=2, seed=0
        ),
    }


def smoke_report():
    """Small sizes for CI smoke runs (same shape as :func:`full_report`).

    The ``K_n`` engine-vs-loop entry runs at ``n = 2¹⁵`` — large enough
    that the ≥100× count-chain regression guard in CI has real margin
    (the speedup grows with ``n``; at 2¹² it sits near the threshold).
    """
    return {
        "batched_vs_loop_Kn_2e15": bench_batched_vs_loop(
            n=2**15, replicas=50, delta=0.1, seed=0
        ),
        "batched_vs_loop_rook": bench_batched_vs_loop(
            n=2**10, replicas=50, delta=0.1, seed=0, host="rook"
        ),
        "count_chain_vs_dense_Kn_2e12": bench_count_chain_vs_dense(
            n=2**12, replicas=50, delta=0.1, seed=0
        ),
        "count_chain_vs_dense_multipartite": bench_kernel_vs_dense(
            host=CompleteMultipartiteGraph([2**10] * 4), replicas=50, seed=0
        ),
        "count_chain_vs_dense_bridge": bench_kernel_vs_dense(
            host=two_clique_bridge(2**10), replicas=50, seed=0
        ),
        "count_chain_theorem1_1e6": bench_count_chain_theorem1(
            n=10**6, trials=20, delta=0.1, seed=0
        ),
        "gaussian_theorem1_1e10": bench_gaussian_theorem1(
            n=10**10, trials=20, delta=0.1, seed=0
        ),
        # The noisy entry keeps the acceptance size n=2^14 even in smoke
        # mode: the ISSUE 5 CI guard (>= 50x) is stated at that size and
        # the legacy loop is still only ~a second there.
        "noisy_count_chain_vs_loop": bench_noisy_count_chain_vs_loop(
            n=2**14, trials=20, eta=0.2, rounds=40, seed=0
        ),
        "zealot_count_chain_vs_loop": bench_zealot_count_chain_vs_loop(
            n=2**12, trials=20, seed=0
        ),
        "dense_gather_flat_take": bench_dense_gather(
            n=2**12, replicas=50, rounds=20, seed=0
        ),
        # The dense-scaling entry keeps a real per-round workload even in
        # smoke mode (n=2^12 x 15 rounds): the ISSUE 10 CI guard reads
        # best_speedup_vs_serial off this entry on the 4-core runner.
        "dense_scaling_rook": bench_dense_scaling(
            n=2**12, replicas=48, delta=0.0, rounds=15, seed=0,
            thread_counts=(1, 2, 4),
        ),
        "sweep_host_store": bench_host_store(
            n=1024, p=0.1, points=4, jobs=2, seed=0
        ),
    }


# ----------------------------------------------------------------------
# pytest-benchmark entries (small sizes; the suite stays fast)
# ----------------------------------------------------------------------


def test_engine_batched_round_kn(benchmark):
    """One batched Best-of-3 round, 50 replicas on K_{2^14}."""
    from repro.core.ensemble import step_best_of_k_batch

    n, reps = 2**14, 50
    g = CompleteGraph(n)
    batch = np.stack([random_opinions(n, 0.1, rng=i) for i in range(reps)])
    rng = np.random.default_rng(0)
    out = np.empty_like(batch)
    benchmark(lambda: step_best_of_k_batch(g, batch, 3, rng, out=out))


def test_engine_count_chain_round(benchmark):
    """One count-chain round for 10^4 replicas on K_{10^6}."""
    from repro.core.ensemble import count_chain_step

    n = 10**6
    rng = np.random.default_rng(1)
    B = rng.integers(1, n, size=10**4)
    benchmark(lambda: count_chain_step(B, n, 3, rng))


def test_engine_full_ensemble_auto(benchmark):
    """A 100-replica K_{2^14} consensus ensemble through the auto route."""
    g = CompleteGraph(2**14)
    benchmark(
        lambda: run_ensemble(
            g, replicas=100, delta=0.1, seed=2, record_trajectories=False
        )
    )


def _print(title, stats):
    print(f"\n## {title}")
    for key, val in stats.items():
        print(f"  {key:32s} {val}")


def main(argv: list[str] | None = None) -> int:
    import argparse
    import json
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke sizes (the CI configuration) instead of acceptance sizes",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the report as a JSON snapshot to PATH",
    )
    args = parser.parse_args(argv)
    report = smoke_report() if args.quick else full_report()
    for name, stats in report.items():
        _print(name, stats)
    kn = report[
        "batched_vs_loop_Kn_2e15" if args.quick else "batched_vs_loop_Kn_2e16"
    ]
    t1 = report[
        "count_chain_theorem1_1e6" if args.quick else "count_chain_theorem1_1e7"
    ]
    ds = report["dense_scaling_rook"]
    print(
        f"\nacceptance: engine-vs-loop speedup on K_n: "
        f"{kn['engine_auto_speedup_vs_loop']:.1f}x (CI guard: >= 100x); "
        f"exact-regime Theorem 1: {t1['seconds']:.2f}s; Gaussian-regime "
        f"Theorem 1 at n=10^10: "
        f"{report['gaussian_theorem1_1e10']['seconds']:.3f}s"
    )
    print(
        f"dense scaling (rook, kernel={ds['kernel']}): best "
        f"{ds['best_speedup_vs_serial']:.2f}x vs serial at "
        f"{ds['best_threads']} threads (CI guard on the 4-core runner: "
        f">= 2x, >= 4x with the compiled kernel); auto vs loop: "
        f"{ds['auto_speedup_vs_loop']:.2f}x (guard: >= 1x); "
        f"bit-identical across thread counts: {ds['threaded_bit_identical']}"
    )
    if args.out is not None:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        snapshot = {
            "benchmark": "ensemble_throughput",
            "mode": "smoke" if args.quick else "full",
            "results": report,
        }
        out_path.write_text(
            json.dumps(snapshot, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
