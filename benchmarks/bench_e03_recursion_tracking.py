"""Benchmark E3: equation (1) recursion vs measured blue-fraction trajectory.

Regenerates the E3 experiment table (DESIGN.md section 3) in quick mode
and asserts its SHAPE MATCH verdict; wall time is the reported metric.
Run the full-size sweep via ``python -m repro.harness.report --full``.
"""

from conftest import run_and_check


def test_e03_recursion_tracking(benchmark):
    result = run_and_check("E3", benchmark)
    assert result.experiment_id == "E3"
