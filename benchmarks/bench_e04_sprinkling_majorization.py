"""Benchmark E4: Proposition 3 / equation (2) sprinkled majorant over DAG ensembles.

Regenerates the E4 experiment table (DESIGN.md section 3) in quick mode
and asserts its SHAPE MATCH verdict; wall time is the reported metric.
Run the full-size sweep via ``python -m repro.harness.report --full``.
"""

from conftest import run_and_check


def test_e04_sprinkling_majorization(benchmark):
    result = run_and_check("E4", benchmark)
    assert result.experiment_id == "E4"
