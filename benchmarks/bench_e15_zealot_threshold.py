"""Benchmark E15: zealot takeover threshold vs mean-field map (extension).

Regenerates the E15 extension experiment (DESIGN.md section 3.2) in
quick mode and asserts its SHAPE MATCH verdict; wall time is the metric.
"""

from conftest import run_and_check


def test_e15_zealot_threshold(benchmark):
    result = run_and_check("E15", benchmark)
    assert result.experiment_id == "E15"
