"""Sweep-scheduler scaling benchmark: serial vs ``--jobs`` vs warm cache.

Measures the three execution regimes of the sweep subsystem on the
*actual harness grids* (the ``sweep_spec`` declarations of the converted
experiments E1/E2/E8/E9/E11 — the same points ``python -m repro report
--jobs N`` fans out):

1. **cold serial** — ``jobs=1``, empty cache (the pre-sweep baseline);
2. **cold parallel** — ``jobs=min(4, cpus)``, empty cache;
3. **warm re-run** — same spec against the parallel run's cache, which
   must skip (almost) every point.

Writes ``BENCH_sweep_scaling.json``::

    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py           # quick grids
    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py --full    # report --full grids

The parallel-speedup acceptance target (≥ 2× with 4 jobs) presumes ≥ 4
physical cores; the snapshot records ``cpu_count`` so a 1-core container
run is legible as such rather than as a regression.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

_SPEC_MODULES = [
    "repro.harness.e01_consensus_scaling",
    "repro.harness.e02_delta_dependence",
    "repro.harness.e08_protocol_comparison",
    "repro.harness.e09_density_threshold",
    "repro.harness.e11_best_of_two_conditions",
]


def _specs(quick: bool, seed: int):
    for name in _SPEC_MODULES:
        yield importlib.import_module(name).sweep_spec(quick=quick, seed=seed)


def _run_all(specs, *, jobs: int, cache) -> tuple[float, int, int]:
    """Execute every spec; returns (elapsed_s, points, cache_hits)."""
    from repro.sweeps import run_sweep

    start = time.perf_counter()
    points = hits = 0
    for spec in specs:
        outcome = run_sweep(spec, jobs=jobs, cache=cache)
        points += outcome.stats.points
        hits += outcome.stats.hits
    return time.perf_counter() - start, points, hits


def measure(*, quick: bool = True, seed: int = 0, jobs: int | None = None) -> dict:
    from repro.sweeps import SweepCache
    from repro.sweeps.runner import _build_host_cached

    cpus = os.cpu_count() or 1
    jobs = jobs if jobs is not None else min(4, cpus)
    specs = list(_specs(quick, seed))

    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        serial_s, points, _ = _run_all(specs, jobs=1, cache=SweepCache(Path(tmp) / "a"))

        # Drop memoised hosts so the parallel pass rebuilds them too and
        # the two cold passes pay identical setup costs.
        _build_host_cached.cache_clear()
        parallel_cache = SweepCache(Path(tmp) / "b")
        parallel_s, _, _ = _run_all(specs, jobs=jobs, cache=parallel_cache)

        warm_s, warm_points, warm_hits = _run_all(
            specs, jobs=jobs, cache=parallel_cache
        )

    return {
        "mode": "quick" if quick else "full",
        "experiments": [m.rsplit(".", 1)[1] for m in _SPEC_MODULES],
        "points": points,
        "cpu_count": cpus,
        "jobs": jobs,
        "cold_serial_s": round(serial_s, 3),
        "cold_parallel_s": round(parallel_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "warm_s": round(warm_s, 3),
        "warm_hits": warm_hits,
        "warm_skip_fraction": round(warm_hits / warm_points, 4) if warm_points else 0.0,
        "warm_speedup": round(serial_s / warm_s, 1) if warm_s else None,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="benchmark the report --full grids instead of the quick ones",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=None, help="parallel worker count (default: min(4, cpus))"
    )
    parser.add_argument(
        "--out-dir",
        default=str(REPO),
        help="directory for the BENCH_*.json snapshot (default: repo root)",
    )
    args = parser.parse_args(argv)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)  # fail here, not post-run

    import numpy as np

    from repro._version import __version__

    started = time.time()
    results = measure(quick=not args.full, seed=args.seed, jobs=args.jobs)
    snapshot = {
        "benchmark": "sweep_scaling",
        "repro_version": __version__,
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
        "machine": platform.machine(),
        "unix_time": int(started),
        "wall_seconds": round(time.time() - started, 3),
        "results": results,
    }
    out_path = out_dir / "BENCH_sweep_scaling.json"
    out_path.write_text(json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    print(
        f"  {results['points']} points on {results['cpu_count']} cpu(s): "
        f"serial {results['cold_serial_s']}s, "
        f"jobs={results['jobs']} {results['cold_parallel_s']}s "
        f"({results['parallel_speedup']}x), "
        f"warm {results['warm_s']}s "
        f"(skipped {results['warm_skip_fraction']:.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
