"""Sweep-scheduler scaling benchmark: serial vs ``--jobs`` vs warm cache.

Measures the execution regimes of the sweep subsystem on the *actual
harness grids* (the ``sweep_spec`` declarations of the converted
experiments E1/E2/E8/E9/E11/E12/E13/E14/E15 — the same points
``python -m repro report --jobs N`` fans out):

1. **cold serial** — ``jobs=1``, empty cache (the pre-sweep baseline);
2. **cold per-spec pools** — ``jobs=min(4, cpus)``, one
   ``ProcessPoolExecutor`` per spec run sequentially (the pre-ISSUE-3
   report behaviour);
3. **cold global pool** — the same jobs, all specs interleaved through
   one shared pool (``run_sweeps`` — what ``repro report`` now does);
4. **warm re-run** — same specs against the global run's cache, which
   must skip (almost) every point;
5. **fault_overhead** — the same cold grid through the durable spool
   backend (``spool=...``, ``workers=jobs``: SQLite lease bookkeeping +
   worker subprocesses) on a clean, fault-free run.  The ratio against
   the in-process pool is the price of crash tolerance when nothing
   crashes — CI guards it at ≤ 10% (plus absolute slack for worker
   start-up on tiny quick grids).

Writes ``BENCH_sweep_scaling.json``::

    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py           # quick grids
    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py --full    # report --full grids

The parallel-speedup acceptance target (≥ 2× with 4 jobs) presumes ≥ 4
physical cores; the snapshot records ``cpu_count`` so a 1-core container
run is legible as such rather than as a regression.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

_SPEC_MODULES = [
    "repro.harness.e01_consensus_scaling",
    "repro.harness.e02_delta_dependence",
    "repro.harness.e08_protocol_comparison",
    "repro.harness.e09_density_threshold",
    "repro.harness.e11_best_of_two_conditions",
    "repro.harness.e12_adversarial_placement",
    "repro.harness.e13_noisy_bifurcation",
    "repro.harness.e14_async_equivalence",
    "repro.harness.e15_zealot_threshold",
]


def _specs(quick: bool, seed: int):
    for name in _SPEC_MODULES:
        yield importlib.import_module(name).sweep_spec(quick=quick, seed=seed)


def _run_all(
    specs, *, jobs: int, cache, pool: str = "per_spec"
) -> tuple[float, int, int]:
    """Execute every spec; returns (elapsed_s, points, cache_hits).

    ``pool="per_spec"`` runs one scheduler call (hence one process pool)
    per spec, sequentially; ``pool="global"`` interleaves every spec's
    points through a single ``run_sweeps`` pool.
    """
    from repro.sweeps import run_sweep, run_sweeps

    start = time.perf_counter()
    if pool == "global":
        outcomes = run_sweeps(specs, jobs=jobs, cache=cache)
    else:
        outcomes = [run_sweep(spec, jobs=jobs, cache=cache) for spec in specs]
    points = sum(o.stats.points for o in outcomes)
    hits = sum(o.stats.hits for o in outcomes)
    return time.perf_counter() - start, points, hits


def measure(*, quick: bool = True, seed: int = 0, jobs: int | None = None) -> dict:
    from repro.sweeps import SweepCache
    from repro.sweeps.runner import _build_host_cached

    cpus = os.cpu_count() or 1
    jobs = jobs if jobs is not None else min(4, cpus)
    specs = list(_specs(quick, seed))

    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        serial_s, points, _ = _run_all(specs, jobs=1, cache=SweepCache(Path(tmp) / "a"))

        # Drop memoised hosts between cold passes so each rebuilds them
        # and all cold passes pay identical setup costs.
        _build_host_cached.cache_clear()
        per_spec_s, _, _ = _run_all(
            specs, jobs=jobs, cache=SweepCache(Path(tmp) / "b")
        )

        _build_host_cached.cache_clear()
        global_cache = SweepCache(Path(tmp) / "c")
        global_s, _, _ = _run_all(
            specs, jobs=jobs, cache=global_cache, pool="global"
        )

        warm_s, warm_points, warm_hits = _run_all(
            specs, jobs=jobs, cache=global_cache, pool="global"
        )

        # Fault-tolerance overhead: the identical cold grid through the
        # durable spool (lease/heartbeat bookkeeping + `repro worker`
        # subprocesses) with no faults injected.  One run_sweeps call so
        # the cross-spec dedup matches the global-pool pass exactly.
        from repro.sweeps import WorkQueue, run_sweeps

        _build_host_cached.cache_clear()
        spool_dir = Path(tmp) / "spool"
        start = time.perf_counter()
        run_sweeps(
            specs,
            jobs=jobs,
            cache=SweepCache(Path(tmp) / "d"),
            spool=spool_dir,
            workers=jobs,
        )
        spool_s = time.perf_counter() - start
        with WorkQueue(spool_dir) as queue:
            spool_stats = queue.stats()

    return {
        "mode": "quick" if quick else "full",
        "experiments": [m.rsplit(".", 1)[1] for m in _SPEC_MODULES],
        "points": points,
        "cpu_count": cpus,
        "jobs": jobs,
        "cold_serial_s": round(serial_s, 3),
        "cold_per_spec_pool_s": round(per_spec_s, 3),
        "cold_global_pool_s": round(global_s, 3),
        "parallel_speedup": round(serial_s / global_s, 3) if global_s else None,
        "global_vs_per_spec_speedup": (
            round(per_spec_s / global_s, 3) if global_s else None
        ),
        "warm_s": round(warm_s, 3),
        "warm_hits": warm_hits,
        "warm_skip_fraction": round(warm_hits / warm_points, 4) if warm_points else 0.0,
        "warm_speedup": round(serial_s / warm_s, 1) if warm_s else None,
        "spool_cold_s": round(spool_s, 3),
        "fault_overhead_ratio": (
            round(spool_s / global_s, 3) if global_s else None
        ),
        "fault_overhead_abs_s": round(spool_s - global_s, 3),
        "spool_retries": spool_stats.retries,
        "spool_requeues": spool_stats.requeues,
        "spool_poisoned": spool_stats.poisoned,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="benchmark the report --full grids instead of the quick ones",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=None, help="parallel worker count (default: min(4, cpus))"
    )
    parser.add_argument(
        "--out-dir",
        default=str(REPO),
        help="directory for the BENCH_*.json snapshot (default: repo root)",
    )
    args = parser.parse_args(argv)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)  # fail here, not post-run

    import numpy as np

    from repro._version import __version__

    started = time.time()
    results = measure(quick=not args.full, seed=args.seed, jobs=args.jobs)
    snapshot = {
        "benchmark": "sweep_scaling",
        "repro_version": __version__,
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
        "machine": platform.machine(),
        "unix_time": int(started),
        "wall_seconds": round(time.time() - started, 3),
        "results": results,
    }
    out_path = out_dir / "BENCH_sweep_scaling.json"
    out_path.write_text(json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    print(
        f"  {results['points']} points on {results['cpu_count']} cpu(s): "
        f"serial {results['cold_serial_s']}s, "
        f"jobs={results['jobs']} per-spec pools "
        f"{results['cold_per_spec_pool_s']}s, "
        f"global pool {results['cold_global_pool_s']}s "
        f"({results['global_vs_per_spec_speedup']}x vs per-spec), "
        f"warm {results['warm_s']}s "
        f"(skipped {results['warm_skip_fraction']:.0%}), "
        f"spool {results['spool_cold_s']}s "
        f"({results['fault_overhead_ratio']}x pool, "
        f"{results['spool_retries']} retries)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
