"""Benchmark E6: Lemma 7 Bin(h, 9^h/d) collision majorant and eq. (6) root tail.

Regenerates the E6 experiment table (DESIGN.md section 3) in quick mode
and asserts its SHAPE MATCH verdict; wall time is the reported metric.
Run the full-size sweep via ``python -m repro.harness.report --full``.
"""

from conftest import run_and_check


def test_e06_collision_bounds(benchmark):
    result = run_and_check("E6", benchmark)
    assert result.experiment_id == "E6"
