"""Benchmark E10: Remark 2 voting-DAG == COBRA-walk duality.

Regenerates the E10 experiment table (DESIGN.md section 3) in quick mode
and asserts its SHAPE MATCH verdict; wall time is the reported metric.
Run the full-size sweep via ``python -m repro.harness.report --full``.
"""

from conftest import run_and_check


def test_e10_cobra_duality(benchmark):
    result = run_and_check("E10", benchmark)
    assert result.experiment_id == "E10"
