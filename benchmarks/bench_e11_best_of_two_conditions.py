"""Benchmark E11: [4]/[5] Best-of-2 imbalance threshold sweep.

Regenerates the E11 experiment table (DESIGN.md section 3) in quick mode
and asserts its SHAPE MATCH verdict; wall time is the reported metric.
Run the full-size sweep via ``python -m repro.harness.report --full``.
"""

from conftest import run_and_check


def test_e11_best_of_two_conditions(benchmark):
    result = run_and_check("E11", benchmark)
    assert result.experiment_id == "E11"
