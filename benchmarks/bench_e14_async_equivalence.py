"""Benchmark E14: asynchronous sweeps vs synchronous rounds (extension).

Regenerates the E14 extension experiment (DESIGN.md section 3.2) in
quick mode and asserts its SHAPE MATCH verdict; wall time is the metric.
"""

from conftest import run_and_check


def test_e14_async_equivalence(benchmark):
    result = run_and_check("E14", benchmark)
    assert result.experiment_id == "E14"
