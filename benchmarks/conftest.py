"""Shared helpers for the benchmark suite.

Every experiment benchmark runs its harness experiment exactly once per
benchmark round (the experiments are themselves Monte-Carlo ensembles;
re-running them many times inside one measurement would only measure the
ensemble twice).  The asserted `passed` flag makes the benchmark suite a
second, timed integration gate: `pytest benchmarks/ --benchmark-only`
both times the reproduction and re-checks every paper-shape verdict.
"""

from __future__ import annotations

import pytest

from repro.harness.registry import run_experiment


def run_and_check(eid: str, benchmark, *, seed: int = 0):
    """Benchmark one harness experiment (quick mode) and assert its verdict."""
    result = benchmark.pedantic(
        run_experiment, args=(eid,), kwargs={"quick": True, "seed": seed},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert result.passed, f"{eid}: {result.verdict}"
    return result
