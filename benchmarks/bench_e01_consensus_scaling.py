"""Benchmark E1: Theorem 1 consensus-time scaling in n (loglog growth-law fit).

Regenerates the E1 experiment table (DESIGN.md section 3) in quick mode
and asserts its SHAPE MATCH verdict; wall time is the reported metric.
Run the full-size sweep via ``python -m repro.harness.report --full``.
"""

from conftest import run_and_check


def test_e01_consensus_scaling(benchmark):
    result = run_and_check("E1", benchmark)
    assert result.experiment_id == "E1"
