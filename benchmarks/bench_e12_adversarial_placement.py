"""Benchmark E12: i.i.d. vs adversarial placement (S2 vs [5]).

Regenerates the E12 experiment table (DESIGN.md section 3) in quick mode
and asserts its SHAPE MATCH verdict; wall time is the reported metric.
Run the full-size sweep via ``python -m repro.harness.report --full``.
"""

from conftest import run_and_check


def test_e12_adversarial_placement(benchmark):
    result = run_and_check("E12", benchmark)
    assert result.experiment_id == "E12"
