"""Benchmark E5: Lemma 4 phase lengths across the (d, delta) grid.

Regenerates the E5 experiment table (DESIGN.md section 3) in quick mode
and asserts its SHAPE MATCH verdict; wall time is the reported metric.
Run the full-size sweep via ``python -m repro.harness.report --full``.
"""

from conftest import run_and_check


def test_e05_phase_structure(benchmark):
    result = run_and_check("E5", benchmark)
    assert result.experiment_id == "E5"
