"""Benchmark E16: COBRA-walk cover times on expanders (extension).

Regenerates the E16 extension experiment (DESIGN.md section 3.2) in
quick mode and asserts its SHAPE MATCH verdict; wall time is the metric.
"""

from conftest import run_and_check


def test_e16_cobra_cover(benchmark):
    result = run_and_check("E16", benchmark)
    assert result.experiment_id == "E16"
