"""Benchmark E9: minimum-degree hypothesis: dense vs constant-degree hosts.

Regenerates the E9 experiment table (DESIGN.md section 3) in quick mode
and asserts its SHAPE MATCH verdict; wall time is the reported metric.
Run the full-size sweep via ``python -m repro.harness.report --full``.
"""

from conftest import run_and_check


def test_e09_density_threshold(benchmark):
    result = run_and_check("E9", benchmark)
    assert result.experiment_id == "E9"
