"""Benchmark E13: noise bifurcation at eta* = 1/3 (extension).

Regenerates the E13 extension experiment (DESIGN.md section 3.2) in
quick mode and asserts its SHAPE MATCH verdict; wall time is the metric.
"""

from conftest import run_and_check


def test_e13_noisy_bifurcation(benchmark):
    result = run_and_check("E13", benchmark)
    assert result.experiment_id == "E13"
