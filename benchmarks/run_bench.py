"""Throughput-benchmark runner: smoke mode + ``BENCH_*.json`` snapshots.

CI / tooling entry point for the perf trajectory::

    PYTHONPATH=src python benchmarks/run_bench.py            # smoke sizes
    PYTHONPATH=src python benchmarks/run_bench.py --full     # acceptance sizes
    PYTHONPATH=src python benchmarks/run_bench.py --out-dir .

Each run writes ``BENCH_ensemble_throughput.json`` (overwriting the
previous snapshot) with the measured replicas/sec for the engine
ablations plus environment metadata, so successive commits can be
compared with plain ``git diff``/``jq``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="acceptance sizes (n=2^16 / n=10^7) instead of smoke sizes",
    )
    parser.add_argument(
        "--out-dir",
        default=str(REPO),
        help="directory for the BENCH_*.json snapshot (default: repo root)",
    )
    args = parser.parse_args(argv)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)  # fail here, not post-run

    import numpy as np

    from repro._version import __version__

    import bench_ensemble_throughput as bench

    started = time.time()
    results = bench.full_report() if args.full else bench.smoke_report()
    snapshot = {
        "benchmark": "ensemble_throughput",
        "mode": "full" if args.full else "smoke",
        "repro_version": __version__,
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
        "machine": platform.machine(),
        "unix_time": int(started),
        "wall_seconds": round(time.time() - started, 3),
        "results": results,
    }
    out_path = out_dir / "BENCH_ensemble_throughput.json"
    out_path.write_text(json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    for name, stats in results.items():
        keys = [k for k in stats if "speedup" in k or k == "seconds"]
        line = ", ".join(f"{k}={stats[k]:.2f}" for k in keys)
        print(f"  {name}: {line}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
