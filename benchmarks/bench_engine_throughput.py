"""Engine performance benchmarks and DESIGN.md ablations 1-2.

These measure the per-round cost of the Best-of-3 update across hosts and
sizes, and quantify the two performance-critical design choices:

* **implicit vs materialised dense hosts** — the implicit ``K_n`` sampler
  must be at least as fast as CSR sampling while using O(1) memory (the
  "slow on dense large graphs" calibration point);
* **vectorised batch sampling vs a per-vertex Python loop** — the
  vectorised round should win by orders of magnitude (optimisation-guide
  idiom; the loop variant exists only as the ablation baseline).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamics import step_best_of_k
from repro.core.opinions import random_opinions
from repro.graphs.generators import erdos_renyi, random_regular
from repro.graphs.implicit import CompleteGraph, RookGraph


def _round(graph, opinions, seed=0):
    rng = np.random.default_rng(seed)
    out = np.empty_like(opinions)

    def go():
        step_best_of_k(graph, opinions, 3, rng, out=out)

    return go


@pytest.mark.parametrize("n", [2**12, 2**16, 2**20])
def test_round_complete_implicit(benchmark, n):
    """One Best-of-3 round on implicit K_n (O(1) memory)."""
    g = CompleteGraph(n)
    benchmark(_round(g, random_opinions(n, 0.1, rng=1)))


@pytest.mark.parametrize("n", [2**10, 2**12])
def test_round_complete_materialised(benchmark, n):
    """Ablation 1 baseline: the same round on materialised K_n CSR."""
    g = CompleteGraph(n).to_csr()
    benchmark(_round(g, random_opinions(n, 0.1, rng=2)))


def test_round_erdos_renyi(benchmark):
    """One round on a dense ER host (CSR path, ~1.6M arcs)."""
    n = 2**12
    g = erdos_renyi(n, 0.1, seed=3)
    benchmark(_round(g, random_opinions(n, 0.1, rng=4)))


def test_round_random_regular(benchmark):
    """One round on a random regular host (CSR path, uniform rows)."""
    g = random_regular(2**12, 64, seed=5)
    benchmark(_round(g, random_opinions(2**12, 0.1, rng=6)))


def test_round_rook(benchmark):
    """One round on the rook host (implicit, alpha ~ 1/2)."""
    g = RookGraph(128)
    benchmark(_round(g, random_opinions(128 * 128, 0.1, rng=7)))


def _python_loop_round(graph, opinions, rng):
    """Ablation 2 baseline: per-vertex Python-loop update (slow path)."""
    n = graph.num_vertices
    out = np.empty_like(opinions)
    for v in range(n):
        draws = graph.sample_neighbors(np.array([v], dtype=np.int64), 3, rng)
        out[v] = 1 if int(opinions[draws[0]].sum()) >= 2 else 0
    return out


def test_round_python_loop_ablation(benchmark):
    """Ablation 2: the un-vectorised round (kept small; it is ~100x slower)."""
    n = 2**10
    g = CompleteGraph(n)
    ops = random_opinions(n, 0.1, rng=8)
    rng = np.random.default_rng(9)
    benchmark(lambda: _python_loop_round(g, ops, rng))


def test_dag_sampling(benchmark):
    """Sampling a 6-level voting-DAG on a dense host."""
    from repro.core.voting_dag import VotingDAG

    g = CompleteGraph(2**16)
    rng = np.random.default_rng(10)
    benchmark(lambda: VotingDAG.sample(g, root=0, T=6, rng=rng))


def test_full_consensus_run(benchmark):
    """A complete Theorem 1 instance end to end (n = 2^16, delta = 0.1)."""
    from repro.core.dynamics import best_of_three

    n = 2**16
    g = CompleteGraph(n)
    init = random_opinions(n, 0.1, rng=11)
    rng = np.random.default_rng(12)

    def go():
        res = best_of_three(g).run(init, seed=rng, max_steps=100, keep_final=False)
        assert res.converged

    benchmark(go)
