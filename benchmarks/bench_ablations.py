"""Ablation benchmarks for the design choices in DESIGN.md §4.

3. Tie rules for even k: KEEP_SELF amplifies the majority (drift map
   ``3b²−2b³``) while RANDOM is a martingale — the time-to-consensus gap
   is the cost of the "wrong" rule.
4. Sprinkling reveal order: default vs shuffled order must produce the
   same pseudo-leaf counts; the benchmark measures the (small) overhead
   of the permuted-order path.
5. float64 vs exact rational recursions: the production trajectory
   iterator vs the `fractions.Fraction` reference (the accuracy
   cross-check lives in the test suite; this quantifies why float64 is
   the production path).

Plus the asynchronous-engine extension: sweeps vs synchronous rounds.
"""

from __future__ import annotations

import numpy as np

from repro.core.dynamics import BestOfKDynamics, TieRule
from repro.core.opinions import random_opinions
from repro.core.recursions import ideal_trajectory
from repro.core.sprinkling import sprinkle
from repro.core.voting_dag import VotingDAG
from repro.extensions.async_dynamics import async_best_of_k_run
from repro.graphs.implicit import CompleteGraph
from repro.util.fraction_ref import ideal_trajectory_exact


def test_ablation3_tie_rule_keep_self(benchmark):
    """Best-of-2 KEEP_SELF to consensus (amplifying rule)."""
    n = 4096
    g = CompleteGraph(n)
    init = random_opinions(n, 0.15, rng=1)
    rng = np.random.default_rng(2)

    def go():
        res = BestOfKDynamics(g, 2, tie_rule=TieRule.KEEP_SELF).run(
            init, seed=rng, max_steps=1000, keep_final=False
        )
        assert res.converged

    benchmark(go)


def test_ablation3_tie_rule_random(benchmark):
    """Best-of-2 RANDOM ties to consensus (martingale — far slower)."""
    n = 512  # kept small: consensus is Theta(n) sweeps for the martingale
    g = CompleteGraph(n)
    init = random_opinions(n, 0.15, rng=3)
    rng = np.random.default_rng(4)

    def go():
        BestOfKDynamics(g, 2, tie_rule=TieRule.RANDOM).run(
            init, seed=rng, max_steps=50 * n, keep_final=False
        )

    benchmark(go)


def test_ablation4_sprinkle_default_order(benchmark):
    """Sprinkling with the default (row-major) reveal order."""
    g = CompleteGraph(64)
    dag = VotingDAG.sample(g, root=0, T=6, rng=5)
    result = benchmark(lambda: sprinkle(dag))
    assert result.is_collision_free_below()


def test_ablation4_sprinkle_shuffled_order(benchmark):
    """Sprinkling with per-level shuffled reveal order (same counts)."""
    g = CompleteGraph(64)
    dag = VotingDAG.sample(g, root=0, T=6, rng=5)
    baseline = sprinkle(dag).pseudo_leaves_per_level()
    rng = np.random.default_rng(6)
    result = benchmark(lambda: sprinkle(dag, order_rng=rng))
    assert np.array_equal(result.pseudo_leaves_per_level(), baseline)


def test_ablation5_recursion_float64(benchmark):
    """Production float64 recursion trajectory (40 iterates)."""
    benchmark(lambda: ideal_trajectory(0.4, 40))


def test_ablation5_recursion_exact_rational(benchmark):
    """Exact Fraction reference trajectory (12 iterates — denominators
    grow triply exponentially, so even 12 steps dwarf the float path)."""
    from fractions import Fraction

    benchmark(lambda: ideal_trajectory_exact(Fraction(2, 5), 12))


def test_extension_async_engine(benchmark):
    """Asynchronous Best-of-3 to consensus, measured in wall time."""
    n = 4096
    g = CompleteGraph(n)
    init = random_opinions(n, 0.15, rng=7)
    rng = np.random.default_rng(8)

    def go():
        res = async_best_of_k_run(g, init, seed=rng, max_sweeps=200)
        assert res.converged

    benchmark(go)
