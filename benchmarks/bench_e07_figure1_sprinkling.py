"""Benchmark E7: Figure 1 sprinkling transform reconstruction.

Regenerates the E7 experiment table (DESIGN.md section 3) in quick mode
and asserts its SHAPE MATCH verdict; wall time is the reported metric.
Run the full-size sweep via ``python -m repro.harness.report --full``.
"""

from conftest import run_and_check


def test_e07_figure1_sprinkling(benchmark):
    result = run_and_check("E7", benchmark)
    assert result.experiment_id == "E7"
